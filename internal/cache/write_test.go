package cache

import (
	"testing"
	"testing/quick"

	"archline/internal/units"
)

func TestOpStreams(t *testing.T) {
	addrs := []uint64{0, 8, 16, 24}
	ops := ReadStream(addrs)
	for i, op := range ops {
		if op.Addr != addrs[i] || op.Write {
			t.Fatal("ReadStream should be all reads")
		}
	}
	ops = WriteEvery(addrs, 2)
	if ops[0].Write || !ops[1].Write || ops[2].Write || !ops[3].Write {
		t.Error("WriteEvery(2) should mark ops 1 and 3")
	}
	ops = WriteEvery(addrs, 0)
	for _, op := range ops {
		if op.Write {
			t.Error("WriteEvery(0) should leave reads")
		}
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	// Single-set, 2-way cache: write two lines dirty, then force both out.
	cfg := Config{Name: "t", Size: 128, LineSize: 64, Assoc: 2, Policy: LRU}
	l, err := NewLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.AccessOp(Op{Addr: 0, Write: true})
	l.AccessOp(Op{Addr: 64, Write: true})
	if l.Writebacks() != 0 {
		t.Fatal("no eviction yet")
	}
	// Evicts line 0 (dirty): one write-back.
	if _, wb := l.AccessOp(Op{Addr: 128}); !wb {
		t.Error("evicting a dirty line should write back")
	}
	if l.Writebacks() != 1 {
		t.Errorf("writebacks = %d", l.Writebacks())
	}
	// Evicts line 64 (dirty): second write-back.
	l.AccessOp(Op{Addr: 192})
	if l.Writebacks() != 2 {
		t.Errorf("writebacks = %d", l.Writebacks())
	}
	// Clean evictions do not write back.
	if _, wb := l.AccessOp(Op{Addr: 256}); wb {
		t.Error("evicting a clean line must not write back")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	cfg := Config{Name: "t", Size: 128, LineSize: 64, Assoc: 2, Policy: LRU}
	l, _ := NewLevel(cfg)
	l.AccessOp(Op{Addr: 0})              // clean fill
	l.AccessOp(Op{Addr: 0, Write: true}) // dirty on hit
	l.AccessOp(Op{Addr: 64})
	l.AccessOp(Op{Addr: 128}) // evicts LRU = line 0, now dirty
	if l.Writebacks() != 1 {
		t.Errorf("write hit should have dirtied the line; writebacks = %d", l.Writebacks())
	}
}

func TestResetClearsWriteState(t *testing.T) {
	cfg := Config{Name: "t", Size: 128, LineSize: 64, Assoc: 2, Policy: LRU}
	l, _ := NewLevel(cfg)
	l.AccessOp(Op{Addr: 0, Write: true})
	l.AccessOp(Op{Addr: 64, Write: true})
	l.AccessOp(Op{Addr: 128, Write: true})
	l.Reset()
	if l.Writebacks() != 0 || l.PrefetchFills() != 0 || l.UsefulPrefetches() != 0 {
		t.Error("Reset should clear write/prefetch counters")
	}
	// Post-reset, the previously dirty lines are gone.
	if _, wb := l.AccessOp(Op{Addr: 0}); wb {
		t.Error("reset cache should have no dirty lines")
	}
}

func TestRunOpsWritebackTraffic(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, Policy: LRU},
		Config{Name: "L2", Size: 8192, LineSize: 64, Assoc: 4, Policy: LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Write-stream a 64 KiB region: far over both capacities; every L1
	// line comes back out dirty.
	addrs, _ := StreamAddrs(units.KiB(64), 64, 1)
	tr := h.RunOps(WriteEvery(addrs, 1), 64)
	var total uint64
	for _, s := range tr.ServedBy {
		total += s
	}
	if total != uint64(len(addrs)) {
		t.Error("ServedBy must sum to the op count")
	}
	if len(tr.WritebackBytes) != 2 {
		t.Fatal("per-level write-back accounting missing")
	}
	// Nearly all L1 fills get written back (all but the 16 resident).
	wantMin := float64(len(addrs)-16-1) * 64
	if float64(tr.WritebackBytes[0]) < wantMin {
		t.Errorf("L1 writeback bytes = %v, want >= %v", tr.WritebackBytes[0], wantMin)
	}
	// A pure read stream generates no write-backs.
	h.Reset()
	tr = h.RunOps(ReadStream(addrs), 64)
	if tr.WritebackBytes[0] != 0 || tr.WritebackBytes[1] != 0 {
		t.Error("read-only stream must not write back")
	}
}

func TestPrefetcherUnitStride(t *testing.T) {
	cfg := Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: LRU}
	l, _ := NewLevel(cfg)
	p := NewPrefetcher(l, 2, 2)
	// Unit-stride line walk: after the detector locks, every demand
	// access hits a prefetched line.
	misses := 0
	n := 512
	for i := 0; i < n; i++ {
		if !p.Access(uint64(i * 64)) {
			misses++
		}
	}
	if misses > 4 {
		t.Errorf("unit-stride with prefetcher: %d misses, want a handful at startup", misses)
	}
	if p.Issued() == 0 {
		t.Fatal("prefetcher never fired")
	}
	// The paper's "direct the prefetcher" goal: accuracy ~1 on streams.
	if acc := p.Accuracy(); acc < 0.9 {
		t.Errorf("stream prefetch accuracy %v, want ~1", acc)
	}
}

func TestPrefetcherDefeatedByChase(t *testing.T) {
	cfg := Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: LRU}
	l, _ := NewLevel(cfg)
	p := NewPrefetcher(l, 2, 2)
	addrs, err := ChaseAddrs(units.MiB(8), 64, 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		p.Access(a)
	}
	// Random strides never repeat: the detector must not lock, so the
	// pointer chase stays essentially prefetch-free (the paper's premise
	// that chasing "cannot use ... the prefetching units").
	if float64(p.Issued()) > 0.01*float64(len(addrs)) {
		t.Errorf("chase should not trigger the stride prefetcher: %d issues", p.Issued())
	}
	if l.MissRate() < 0.95 {
		t.Errorf("chase should still miss, rate %v", l.MissRate())
	}
}

func TestPrefetcherLargeStride(t *testing.T) {
	cfg := Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: LRU}
	l, _ := NewLevel(cfg)
	p := NewPrefetcher(l, 1, 2)
	// Fixed large stride: detector locks and prefetches correctly too
	// (strided is still regular).
	misses := 0
	for i := 0; i < 256; i++ {
		if !p.Access(uint64(i * 4096)) {
			misses++
		}
	}
	if misses > 8 {
		t.Errorf("fixed-stride pattern should lock the prefetcher, %d misses", misses)
	}
}

func TestPrefetcherReset(t *testing.T) {
	cfg := Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: LRU}
	l, _ := NewLevel(cfg)
	p := NewPrefetcher(l, 2, 2)
	for i := 0; i < 64; i++ {
		p.Access(uint64(i * 64))
	}
	p.Reset()
	if p.Issued() != 0 {
		t.Error("Reset should clear issue count")
	}
	if p.Accuracy() != 1 {
		t.Error("fresh prefetcher accuracy defined as 1")
	}
	// Degenerate constructor args clamp.
	q := NewPrefetcher(l, 0, 0)
	if q.Degree != 1 || q.Threshold != 1 {
		t.Error("constructor should clamp degree/threshold to 1")
	}
}

func TestInsertSemantics(t *testing.T) {
	cfg := Config{Name: "t", Size: 128, LineSize: 64, Assoc: 2, Policy: LRU}
	l, _ := NewLevel(cfg)
	if l.Insert(0) {
		t.Error("inserting a missing line reports false")
	}
	if !l.Insert(0) {
		t.Error("inserting a resident line reports true")
	}
	if l.PrefetchFills() != 1 {
		t.Errorf("prefetch fills = %d, want 1", l.PrefetchFills())
	}
	// Demand hit on the prefetched line counts as useful exactly once.
	l.Access(0)
	l.Access(0)
	if l.UsefulPrefetches() != 1 {
		t.Errorf("useful prefetches = %d, want 1", l.UsefulPrefetches())
	}
	// Inserts do not perturb demand hit/miss counters.
	if l.Accesses() != 2 {
		t.Errorf("accesses = %d, want 2 (inserts excluded)", l.Accesses())
	}
	// Insert evicting a dirty line writes back.
	l2, _ := NewLevel(cfg)
	l2.AccessOp(Op{Addr: 0, Write: true})
	l2.AccessOp(Op{Addr: 64, Write: true})
	l2.Insert(128)
	if l2.Writebacks() != 1 {
		t.Errorf("insert over dirty line: writebacks = %d", l2.Writebacks())
	}
}

// Property: write-backs never exceed demand misses plus prefetch fills
// (every write-back corresponds to a fill that dirtied).
func TestQuickWritebackBound(t *testing.T) {
	f := func(raw []uint16, everyRaw uint8) bool {
		cfg := Config{Name: "q", Size: 2048, LineSize: 64, Assoc: 4, Policy: LRU}
		l, err := NewLevel(cfg)
		if err != nil {
			return false
		}
		every := int(everyRaw%4) + 1
		for i, a := range raw {
			l.AccessOp(Op{Addr: uint64(a) * 8, Write: i%every == 0})
		}
		return l.Writebacks() <= l.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
