package model

import (
	"errors"
	"fmt"
	"math"

	"archline/internal/units"
)

// MemLevel identifies a memory-hierarchy level (or access mode) for which
// the extended model carries separate time and energy costs — the
// eps_L1/eps_L2/eps_rand columns of Table I.
type MemLevel int

// The access levels/modes the paper measures.
const (
	LevelDRAM MemLevel = iota // streaming from main memory (eps_mem)
	LevelL1                   // L1 cache (or GPU shared memory/scratchpad)
	LevelL2                   // L2 cache
	LevelRand                 // random (pointer-chase) main-memory access
)

// String names the level as Table I's column headers do.
func (l MemLevel) String() string {
	switch l {
	case LevelDRAM:
		return "DRAM"
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelRand:
		return "random"
	default:
		return "unknown"
	}
}

// LevelParams are the per-level throughput and energy costs. For
// LevelRand the "byte" costs are expressed per access via the cache-line
// size carried by the Hierarchy.
type LevelParams struct {
	Tau units.TimePerByte   // seconds per byte at this level's peak
	Eps units.EnergyPerByte // inclusive energy per byte at this level
}

// Hierarchy extends Params with per-level memory costs. The key modelling
// principle (section V-B) is that every cost is *inclusive*: eps_L2
// includes the L1 traffic incurred on the way up, and eps_mem includes
// the whole path from DRAM cells to registers, so levels compose by
// simple addition of per-level traffic.
type Hierarchy struct {
	Params
	Levels map[MemLevel]LevelParams
}

// LevelTraffic is the byte volume an algorithm moves at one level.
type LevelTraffic struct {
	Level MemLevel
	Bytes units.Bytes
}

// ErrUnknownLevel reports traffic attributed to a level the hierarchy has
// no parameters for.
var ErrUnknownLevel = errors.New("model: no parameters for memory level")

// ParamsFor returns a flat Params in which the memory costs are those of
// the requested level — the model used when a microbenchmark's working
// set is sized to fit in that level. LevelDRAM returns the base
// parameters.
func (h Hierarchy) ParamsFor(level MemLevel) (Params, error) {
	if level == LevelDRAM {
		return h.Params, nil
	}
	lp, ok := h.Levels[level]
	if !ok {
		return Params{}, fmt.Errorf("%w: %v", ErrUnknownLevel, level)
	}
	p := h.Params
	p.TauMem = lp.Tau
	p.EpsMem = lp.Eps
	return p, nil
}

// Validate checks the base parameters and the paper's sanity invariants:
// all level costs positive, and eps_L1 <= eps_L2 when both are present
// ("as it can be seen in table I, eps_L1 <= eps_L2 for every system").
func (h Hierarchy) Validate() error {
	if err := h.Params.Validate(); err != nil {
		return err
	}
	for level, lp := range h.Levels {
		if lp.Tau <= 0 || math.IsNaN(float64(lp.Tau)) || math.IsInf(float64(lp.Tau), 0) {
			return fmt.Errorf("model: level %v tau must be positive and finite", level)
		}
		if lp.Eps < 0 || math.IsNaN(float64(lp.Eps)) || math.IsInf(float64(lp.Eps), 0) {
			return fmt.Errorf("model: level %v eps must be non-negative and finite", level)
		}
	}
	l1, ok1 := h.Levels[LevelL1]
	l2, ok2 := h.Levels[LevelL2]
	if ok1 && ok2 && l1.Eps > l2.Eps {
		return fmt.Errorf("model: eps_L1 (%v) > eps_L2 (%v) violates inclusive-cost ordering", l1.Eps, l2.Eps)
	}
	return nil
}

// Time generalizes eq. (3) to per-level traffic: flops and each level's
// transfers overlap maximally, and the cap term pools all dynamic energy.
func (h Hierarchy) Time(w units.Flops, traffic []LevelTraffic) (units.Time, error) {
	tMax := w.Count() * float64(h.TauFlop)
	dynamic := w.Count() * float64(h.EpsFlop)
	for _, tr := range traffic {
		p, err := h.ParamsFor(tr.Level)
		if err != nil {
			return 0, err
		}
		if t := tr.Bytes.Count() * float64(p.TauMem); t > tMax {
			tMax = t
		}
		dynamic += tr.Bytes.Count() * float64(p.EpsMem)
	}
	if dynamic > 0 {
		if capT := dynamic / h.DeltaPi.Watts(); capT > tMax {
			tMax = capT
		}
	}
	return units.Time(tMax), nil
}

// Energy generalizes eq. (1) to per-level traffic.
func (h Hierarchy) Energy(w units.Flops, traffic []LevelTraffic) (units.Energy, error) {
	t, err := h.Time(w, traffic)
	if err != nil {
		return 0, err
	}
	e := w.Count()*float64(h.EpsFlop) + h.Pi1.Watts()*t.Seconds()
	for _, tr := range traffic {
		p, perr := h.ParamsFor(tr.Level)
		if perr != nil {
			return 0, perr
		}
		e += tr.Bytes.Count() * float64(p.EpsMem)
	}
	return units.Energy(e), nil
}

// RandomAccessParams describe the pointer-chase access mode: a sustained
// access rate and an inclusive energy per access (Table I columns 13).
type RandomAccessParams struct {
	Rate units.AccessRate      // sustainable random accesses per second
	Eps  units.EnergyPerAccess // inclusive energy per access
	Line units.Bytes           // cache line fetched per access
}

// TimeEnergy evaluates the model for n random accesses interleaved with w
// flops under constant power pi1 and cap deltaPi: the same max-of-three
// structure with accesses in place of bytes.
func (r RandomAccessParams) TimeEnergy(n units.Accesses, base Params) (units.Time, units.Energy, error) {
	if r.Rate <= 0 {
		return 0, 0, errors.New("model: random access rate must be positive")
	}
	tAcc := n.Count() / float64(r.Rate)
	dynamic := n.Count() * float64(r.Eps)
	t := tAcc
	if dynamic > 0 && base.DeltaPi.Watts() > 0 {
		if capT := dynamic / base.DeltaPi.Watts(); capT > t {
			t = capT
		}
	}
	e := dynamic + base.Pi1.Watts()*t
	return units.Time(t), units.Energy(e), nil
}
