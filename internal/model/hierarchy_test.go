package model

import (
	"errors"
	"math"
	"testing"

	"archline/internal/units"
)

// titanHierarchy builds the Titan's Table I hierarchy: L1 (shared memory)
// 24.4 pJ/B at 1610 GB/s, L2 195 pJ/B at 297 GB/s.
func titanHierarchy() Hierarchy {
	return Hierarchy{
		Params: titanParams(),
		Levels: map[MemLevel]LevelParams{
			LevelL1: {Tau: units.GBPerSec(1610).Inverse(), Eps: units.PicoJoulePerByte(24.4)},
			LevelL2: {Tau: units.GBPerSec(297).Inverse(), Eps: units.PicoJoulePerByte(195)},
		},
	}
}

func TestHierarchyValidate(t *testing.T) {
	h := titanHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	// eps_L1 > eps_L2 violates the inclusive-cost ordering of section V-B.
	bad := titanHierarchy()
	bad.Levels[LevelL1] = LevelParams{Tau: bad.Levels[LevelL1].Tau, Eps: units.PicoJoulePerByte(500)}
	if bad.Validate() == nil {
		t.Error("eps_L1 > eps_L2 should be rejected")
	}
	bad = titanHierarchy()
	bad.Levels[LevelL2] = LevelParams{Tau: 0, Eps: 1}
	if bad.Validate() == nil {
		t.Error("zero level tau should be rejected")
	}
	bad = titanHierarchy()
	bad.Levels[LevelL2] = LevelParams{Tau: 1, Eps: units.EnergyPerByte(math.NaN())}
	if bad.Validate() == nil {
		t.Error("NaN level eps should be rejected")
	}
	bad = titanHierarchy()
	bad.TauFlop = 0
	if bad.Validate() == nil {
		t.Error("invalid base params should be rejected")
	}
}

func TestParamsFor(t *testing.T) {
	h := titanHierarchy()
	l2, err := h.ParamsFor(LevelL2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(l2.PeakByteRate()), 297e9, 1e-9, "L2 bandwidth")
	approx(t, float64(l2.EpsMem), 195e-12, 1e-9, "L2 energy")
	// Flop-side params unchanged.
	if l2.TauFlop != h.TauFlop || l2.Pi1 != h.Pi1 {
		t.Error("ParamsFor should only swap memory costs")
	}
	dram, err := h.ParamsFor(LevelDRAM)
	if err != nil || dram != h.Params {
		t.Error("LevelDRAM should return base params")
	}
	if _, err := h.ParamsFor(LevelRand); !errors.Is(err, ErrUnknownLevel) {
		t.Errorf("missing level should return ErrUnknownLevel, got %v", err)
	}
}

func TestHierarchyTimeEnergy(t *testing.T) {
	h := titanHierarchy()
	w := units.GFlops(10)
	traffic := []LevelTraffic{
		{Level: LevelDRAM, Bytes: units.GB(1)},
		{Level: LevelL2, Bytes: units.GB(4)},
		{Level: LevelL1, Bytes: units.GB(16)},
	}
	tm, err := h.Time(w, traffic)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Fatal("time must be positive")
	}
	e, err := h.Energy(w, traffic)
	if err != nil {
		t.Fatal(err)
	}
	// Energy must include every component.
	minE := float64(w)*float64(h.EpsFlop) +
		1e9*267e-12 + 4e9*195e-12 + 16e9*24.4e-12
	if float64(e) < minE {
		t.Errorf("energy %v below sum of dynamic parts %v", float64(e), minE)
	}
	// Unknown level propagates an error.
	if _, err := h.Time(w, []LevelTraffic{{Level: LevelRand, Bytes: 1}}); err == nil {
		t.Error("unknown level in Time should error")
	}
	if _, err := h.Energy(w, []LevelTraffic{{Level: LevelRand, Bytes: 1}}); err == nil {
		t.Error("unknown level in Energy should error")
	}
}

func TestHierarchyReducesToFlatModel(t *testing.T) {
	// With all traffic at DRAM, hierarchy model == flat model.
	h := titanHierarchy()
	w, q := units.GFlops(10), units.GB(2)
	tm, err := h.Time(w, []LevelTraffic{{Level: LevelDRAM, Bytes: q}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(tm), float64(h.Params.Time(w, q)), 1e-12, "time reduction")
	e, err := h.Energy(w, []LevelTraffic{{Level: LevelDRAM, Bytes: q}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(e), float64(h.Params.Energy(w, q)), 1e-12, "energy reduction")
}

func TestMemLevelString(t *testing.T) {
	names := map[MemLevel]string{
		LevelDRAM: "DRAM", LevelL1: "L1", LevelL2: "L2",
		LevelRand: "random", MemLevel(42): "unknown",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestRandomAccessParams(t *testing.T) {
	// Titan: 968 Macc/s at 48 nJ/access (Table I column 13).
	r := RandomAccessParams{
		Rate: units.MAccPerSec(968),
		Eps:  units.NanoJoulePerAccess(48),
		Line: 128,
	}
	base := titanParams()
	n := units.Accesses(1e9)
	tm, e, err := r.TimeEnergy(n, base)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic power of chasing: 48 nJ * 968 Macc/s = 46.5 W < cap, so
	// time is rate-limited.
	approx(t, float64(tm), 1e9/968e6, 1e-9, "chase time")
	wantE := 1e9*48e-9 + float64(base.Pi1)*float64(tm)
	approx(t, float64(e), wantE, 1e-9, "chase energy")

	// Power-capped chasing: tiny cap throttles access rate.
	capped := base
	capped.DeltaPi = 10
	tm2, _, err := r.TimeEnergy(n, capped)
	if err != nil {
		t.Fatal(err)
	}
	if !(tm2 > tm) {
		t.Error("cap should slow random access")
	}
	approx(t, float64(tm2), 1e9*48e-9/10, 1e-9, "capped chase time")

	bad := RandomAccessParams{Rate: 0}
	if _, _, err := bad.TimeEnergy(1, base); err == nil {
		t.Error("zero rate should error")
	}
}
