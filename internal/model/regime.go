package model

import (
	"math"

	"archline/internal/units"
)

// Regime classifies which term of eq. (3)'s max dominates at a given
// intensity: the memory-bandwidth term, the power-cap term, or the
// compute term. These are the "M", "C", and "F" annotations of fig. 6.
type Regime int

// The three regimes of the capped model.
const (
	MemoryBound  Regime = iota // Q tau_mem dominates ("M")
	CapBound                   // (W eps_flop + Q eps_mem)/DeltaPi dominates ("C")
	ComputeBound               // W tau_flop dominates ("F", flop-bound)
)

// String returns the regime's name.
func (r Regime) String() string {
	switch r {
	case MemoryBound:
		return "memory-bound"
	case CapBound:
		return "cap-bound"
	case ComputeBound:
		return "compute-bound"
	default:
		return "unknown"
	}
}

// Letter returns the paper's single-letter annotation used in fig. 6:
// "M" for memory-bound, "C" for cap-bound, "F" for flop-(compute-)bound.
func (r Regime) Letter() string {
	switch r {
	case MemoryBound:
		return "M"
	case CapBound:
		return "C"
	case ComputeBound:
		return "F"
	default:
		return "?"
	}
}

// RegimeAt classifies intensity i against the machine's cap interval
// [B_tau^-, B_tau^+]. When the cap never binds (Powerful), intensities
// below B_tau are memory-bound and those at or above are compute-bound.
func (p Params) RegimeAt(i units.Intensity) Regime {
	iv := i.Ratio()
	if math.IsNaN(iv) {
		return CapBound
	}
	if p.Powerful() {
		if iv < p.TimeBalance().Ratio() {
			return MemoryBound
		}
		return ComputeBound
	}
	switch {
	case iv >= p.TimeBalancePlus().Ratio():
		return ComputeBound
	case iv <= p.TimeBalanceMinus().Ratio():
		return MemoryBound
	default:
		return CapBound
	}
}

// ThrottleFactor is the slowdown the cap imposes at intensity i: the
// capped model's time divided by the uncapped model's time at the same
// workload. A value of 1 means the cap does not bind; the paper's "by how
// much flops and memory operations should slow down" prediction.
func (p Params) ThrottleFactor(i units.Intensity) float64 {
	if i <= 0 {
		return 1
	}
	w := units.Flops(1)
	q := units.Intensity(i).Bytes(w)
	tu := p.TimeUncapped(w, q).Seconds()
	tc := p.Time(w, q).Seconds()
	if tu <= 0 {
		return 1
	}
	return tc / tu
}

// CapBindingRange returns the intensity interval [lo, hi] over which the
// power cap is the binding constraint, or ok == false when the cap never
// binds (DeltaPi >= pi_flop + pi_mem).
func (p Params) CapBindingRange() (lo, hi units.Intensity, ok bool) {
	if p.Powerful() {
		return 0, 0, false
	}
	return p.TimeBalanceMinus(), p.TimeBalancePlus(), true
}
