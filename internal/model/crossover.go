package model

import (
	"errors"
	"math"

	"archline/internal/units"
)

// Metric selects which model output a crossover search compares.
type Metric int

// The comparable metrics.
const (
	MetricFlopRate      Metric = iota // W/T, time-efficiency (fig. 1 left)
	MetricFlopsPerJoule               // W/E, energy-efficiency (fig. 1 middle)
	MetricAvgPower                    // E/T (fig. 1 right)
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricFlopRate:
		return "flop/time"
	case MetricFlopsPerJoule:
		return "flop/energy"
	case MetricAvgPower:
		return "power"
	default:
		return "unknown"
	}
}

// valueAt evaluates metric m for machine p at intensity i.
func (p Params) valueAt(m Metric, i units.Intensity) float64 {
	switch m {
	case MetricFlopRate:
		return float64(p.FlopRateAt(i))
	case MetricFlopsPerJoule:
		return float64(p.FlopsPerJouleAt(i))
	case MetricAvgPower:
		return p.AvgPowerAt(i).Watts()
	default:
		return math.NaN()
	}
}

// MetricAt exposes valueAt for callers that sweep metrics generically
// (e.g. the fig. 1 renderer).
func (p Params) MetricAt(m Metric, i units.Intensity) float64 { return p.valueAt(m, i) }

// ErrNoCrossover reports that two machines do not change relative order
// on the searched intensity interval.
var ErrNoCrossover = errors.New("model: no crossover in interval")

// Crossover finds an intensity in [lo, hi] at which machines a and b are
// equal on metric m, by bisection on the sign of log(a/b) over log-spaced
// intensities. It returns ErrNoCrossover when the sign of the difference
// is the same at both endpoints. The model's metric curves are monotone
// ratios of piecewise-hyperbolic functions, so within one ordering flip a
// bisection is exact.
func Crossover(a, b Params, m Metric, lo, hi units.Intensity) (units.Intensity, error) {
	if lo <= 0 || hi <= lo {
		return 0, errors.New("model: crossover interval must satisfy 0 < lo < hi")
	}
	f := func(logI float64) float64 {
		i := units.Intensity(math.Exp(logI))
		va, vb := a.valueAt(m, i), b.valueAt(m, i)
		if va <= 0 || vb <= 0 {
			return math.NaN()
		}
		return math.Log(va / vb)
	}
	x0, x1 := math.Log(lo.Ratio()), math.Log(hi.Ratio())
	f0, f1 := f(x0), f(x1)
	if math.IsNaN(f0) || math.IsNaN(f1) {
		return 0, errors.New("model: metric not positive at interval endpoint")
	}
	if f0 == 0 {
		return lo, nil
	}
	if f1 == 0 {
		return hi, nil
	}
	if (f0 > 0) == (f1 > 0) {
		return 0, ErrNoCrossover
	}
	for iter := 0; iter < 200; iter++ {
		mid := (x0 + x1) / 2
		fm := f(mid)
		if fm == 0 || x1-x0 < 1e-12 {
			return units.Intensity(math.Exp(mid)), nil
		}
		if (fm > 0) == (f0 > 0) {
			x0, f0 = mid, fm
		} else {
			x1 = mid
		}
	}
	return units.Intensity(math.Exp((x0 + x1) / 2)), nil
}

// Crossovers scans [lo, hi] with n log-spaced probes and returns every
// ordering flip found (each refined by bisection). Metric curves of two
// machines can cross more than once when cap regimes interleave.
func Crossovers(a, b Params, m Metric, lo, hi units.Intensity, n int) []units.Intensity {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	return CrossoversOnGrid(a, b, m, LogSpace(lo, hi, n))
}

// CrossoversOnGrid is Crossovers over a caller-supplied probe grid
// (ascending intensities), so callers scanning several metric pairs
// over the same range build the grid once instead of once per pair.
func CrossoversOnGrid(a, b Params, m Metric, grid []units.Intensity) []units.Intensity {
	if len(grid) < 2 {
		return nil
	}
	var out []units.Intensity
	sign := func(i units.Intensity) int {
		va, vb := a.valueAt(m, i), b.valueAt(m, i)
		switch {
		case va > vb:
			return 1
		case va < vb:
			return -1
		default:
			return 0
		}
	}
	prev := sign(grid[0])
	for k := 1; k < len(grid); k++ {
		cur := sign(grid[k])
		if cur != prev && prev != 0 && cur != 0 {
			if x, err := Crossover(a, b, m, grid[k-1], grid[k]); err == nil {
				out = append(out, x)
			}
		}
		if cur != 0 {
			prev = cur
		}
	}
	return out
}

// LogSpace returns n intensities spaced uniformly in log scale over
// [lo, hi] inclusive. It is the grid every figure in the paper sweeps.
func LogSpace(lo, hi units.Intensity, n int) []units.Intensity {
	if n < 1 || lo <= 0 || hi < lo {
		return nil
	}
	if n == 1 {
		return []units.Intensity{lo}
	}
	out := make([]units.Intensity, n)
	l0, l1 := math.Log(lo.Ratio()), math.Log(hi.Ratio())
	for i := range out {
		frac := float64(i) / float64(n-1)
		out[i] = units.Intensity(math.Exp(l0 + frac*(l1-l0)))
	}
	return out
}

// PowerMatch returns the number of copies of machine "small" needed to
// match machine "big" in peak average power, the paper's construction of
// the hypothetical Arndale-GPU supercomputer ("assembling 47 of the
// mobile GPUs to match on peak power"). The count is rounded up.
func PowerMatch(big, small Params) (int, error) {
	ps := small.PeakAvgPower().Watts()
	if ps <= 0 {
		return 0, errors.New("model: small machine has no peak power")
	}
	k := big.PeakAvgPower().Watts() / ps
	if k < 1 {
		return 1, nil
	}
	return int(math.Ceil(k - 1e-9)), nil
}

// PowerMatchWatts returns the number of copies of machine small needed to
// reach a given power budget, rounded down so the assembly stays within
// the budget (the section V-D "23 Arndale GPUs match 140 Watts"
// construction). It returns at least 1 when even a single copy exceeds
// the budget is false; if one copy already exceeds the budget it returns
// 0 and an error.
func PowerMatchWatts(small Params, budget units.Power) (int, error) {
	ps := small.PeakAvgPower().Watts()
	if ps <= 0 {
		return 0, errors.New("model: machine has no peak power")
	}
	k := int(math.Floor(budget.Watts()/ps + 1e-9))
	if k < 1 {
		return 0, errors.New("model: one copy already exceeds the power budget")
	}
	return k, nil
}
