package model

import (
	"errors"
	"math"

	"archline/internal/units"
)

// This file locates "knees" on the rooflines: the minimum operational
// intensity an algorithm needs before a machine delivers a target
// fraction of its best performance or energy efficiency. Algorithm
// designers read the paper's figures exactly this way ("what intensity
// do I need before the Titan is worth it?"); these helpers answer it in
// closed form via bisection on the monotone model curves.

// RequiredIntensityForRate returns the smallest intensity at which the
// machine reaches frac (0 < frac <= 1) of its cap-limited peak flop
// rate. The flop-rate curve of eq. (4) is non-decreasing in intensity,
// so the answer is unique; an error is returned when even I -> inf falls
// short (cannot happen for frac <= 1 up to rounding).
func (p Params) RequiredIntensityForRate(frac float64) (units.Intensity, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if frac <= 0 || frac > 1 {
		return 0, errors.New("model: fraction must be in (0, 1]")
	}
	// Peak achievable rate: eq. (4) as I -> inf.
	peak := float64(p.FlopRateAt(units.Intensity(math.Inf(1))))
	if peak <= 0 {
		return 0, errors.New("model: machine has no peak rate")
	}
	target := frac * peak
	f := func(i float64) bool { return float64(p.FlopRateAt(units.Intensity(i))) >= target*(1-1e-12) }
	return bisectIntensity(f)
}

// RequiredIntensityForEfficiency returns the smallest intensity at which
// the machine reaches frac of its asymptotic peak flop/J. The
// energy-efficiency curve of eq. (2) is non-decreasing in intensity.
func (p Params) RequiredIntensityForEfficiency(frac float64) (units.Intensity, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if frac <= 0 || frac > 1 {
		return 0, errors.New("model: fraction must be in (0, 1]")
	}
	peak := float64(p.PeakFlopsPerJoule())
	if peak <= 0 || math.IsInf(peak, 0) {
		return 0, errors.New("model: machine has no finite peak efficiency")
	}
	target := frac * peak
	f := func(i float64) bool {
		return float64(p.FlopsPerJouleAt(units.Intensity(i))) >= target*(1-1e-12)
	}
	return bisectIntensity(f)
}

// bisectIntensity finds the smallest intensity satisfying the monotone
// predicate f over a log grid from 2^-20 to 2^40.
func bisectIntensity(f func(float64) bool) (units.Intensity, error) {
	lo, hi := math.Ldexp(1, -20), math.Ldexp(1, 40)
	if f(lo) {
		return units.Intensity(lo), nil
	}
	if !f(hi) {
		return 0, errors.New("model: target unreachable at any intensity")
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	for iter := 0; iter < 200 && lhi-llo > 1e-12; iter++ {
		mid := (llo + lhi) / 2
		if f(math.Exp(mid)) {
			lhi = mid
		} else {
			llo = mid
		}
	}
	return units.Intensity(math.Exp(lhi)), nil
}
