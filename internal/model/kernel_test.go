package model_test

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

// kernelCases enumerates every Params value the bit-identity pin
// sweeps: all Table I platforms in both precisions, each under the
// figs. 6-7 cap schedule plus the degenerate zero cap, and one
// "uploaded" machine that exists in no built-in table (the fit-input
// shape a POST /v1/platforms upload carries).
func kernelCases(t *testing.T) map[string]model.Params {
	t.Helper()
	cases := map[string]model.Params{}
	for _, plat := range machine.All() {
		cases[string(plat.ID)+"/single"] = plat.Single
		if plat.SupportsDouble() {
			p, err := plat.DoubleParams()
			if err != nil {
				t.Fatalf("%s: %v", plat.ID, err)
			}
			cases[string(plat.ID)+"/double"] = p
		}
	}
	// An uploaded platform: Table I-shaped fit outputs, values that
	// match no built-in row.
	cases["uploaded/single"] = model.Params{
		TauFlop: 7.3e-12,
		TauMem:  1.9e-11,
		EpsFlop: 7.7e-10,
		EpsMem:  4.1e-9,
		Pi1:     33.5,
		DeltaPi: 71.25,
	}
	caps := map[string]float64{
		"cap-half": 0.5, "cap-quarter": 0.25, "cap-eighth": 0.125, "cap-zero": 0,
	}
	out := map[string]model.Params{}
	for name, p := range cases {
		out[name] = p
		for suffix, frac := range caps {
			capped, err := p.WithCap(frac)
			if err != nil {
				t.Fatal(err)
			}
			out[name+"/"+suffix] = capped
		}
	}
	return out
}

// kernelGrid is the intensity probe set: a dense log grid far wider
// than any figure sweeps, plus the boundary and invalid inputs every
// per-point method special-cases.
func kernelGrid() []float64 {
	grid := model.LogSpace(1e-4, 1e5, 1501)
	out := make([]float64, 0, len(grid)+4)
	out = append(out, 0, -1, -0.125, math.Inf(1))
	for _, i := range grid {
		out = append(out, i.Ratio())
	}
	return out
}

// TestKernelMatchesParamsBitwise is the refactor's contract: every
// Kernel per-point method must reproduce the corresponding Params
// method bit for bit — not approximately — on every platform, both
// precisions, every cap setting, across the whole probe grid.
func TestKernelMatchesParamsBitwise(t *testing.T) {
	grid := kernelGrid()
	for name, p := range kernelCases(t) {
		k := model.NewKernel(p)
		for _, iv := range grid {
			i := units.Intensity(iv)
			checks := []struct {
				what      string
				got, want float64
			}{
				{"FlopRateAt", k.FlopRateAt(iv), float64(p.FlopRateAt(i))},
				{"FlopRateAtUncapped", k.FlopRateAtUncapped(iv), float64(p.FlopRateAtUncapped(i))},
				{"EnergyPerFlopAt", k.EnergyPerFlopAt(iv), float64(p.EnergyPerFlopAt(i))},
				{"FlopsPerJouleAt", k.FlopsPerJouleAt(iv), float64(p.FlopsPerJouleAt(i))},
				{"AvgPowerAt", k.AvgPowerAt(iv), p.AvgPowerAt(i).Watts()},
				{"ThrottleFactor", k.ThrottleFactor(iv), p.ThrottleFactor(i)},
				{"MetricAt(rate)", k.MetricAt(model.MetricFlopRate, iv), p.MetricAt(model.MetricFlopRate, i)},
				{"MetricAt(eff)", k.MetricAt(model.MetricFlopsPerJoule, iv), p.MetricAt(model.MetricFlopsPerJoule, i)},
				{"MetricAt(power)", k.MetricAt(model.MetricAvgPower, iv), p.MetricAt(model.MetricAvgPower, i)},
			}
			for _, c := range checks {
				if math.Float64bits(c.got) != math.Float64bits(c.want) {
					t.Fatalf("%s: %s(%g) = %x (%g), Params gives %x (%g)",
						name, c.what, iv, math.Float64bits(c.got), c.got,
						math.Float64bits(c.want), c.want)
				}
			}
			if got, want := k.RegimeAt(iv), p.RegimeAt(i); got != want {
				t.Fatalf("%s: RegimeAt(%g) = %v, Params gives %v", name, iv, got, want)
			}
		}
		// NaN intensity exercises the regime classifier's explicit
		// NaN branch and eq. (7)'s fall-through arm.
		nan := math.NaN()
		if got, want := k.RegimeAt(nan), p.RegimeAt(units.Intensity(nan)); got != want {
			t.Fatalf("%s: RegimeAt(NaN) = %v, Params gives %v", name, got, want)
		}
		if got, want := k.AvgPowerAt(nan), p.AvgPowerAt(units.Intensity(nan)).Watts(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: AvgPowerAt(NaN) = %g, Params gives %g", name, got, want)
		}
	}
}

// TestKernelPointAtMatchesMethods: the bundled Point carries exactly
// the individual methods' values.
func TestKernelPointAtMatchesMethods(t *testing.T) {
	p := machine.MustByID("gtx-titan").Single
	k := model.NewKernel(p)
	for _, iv := range []float64{0.125, 1, 4, 64, 512} {
		pt := k.PointAt(iv)
		if pt.Intensity != iv || pt.Regime != k.RegimeAt(iv) ||
			pt.FlopsPerSec != k.FlopRateAt(iv) ||
			pt.UncappedFlopsPerSec != k.FlopRateAtUncapped(iv) ||
			pt.FlopsPerJoule != k.FlopsPerJouleAt(iv) ||
			pt.AvgPowerW != k.AvgPowerAt(iv) ||
			pt.Throttle != k.ThrottleFactor(iv) {
			t.Fatalf("PointAt(%g) = %+v disagrees with the per-metric methods", iv, pt)
		}
	}
}

// TestAppendLogSpaceMatchesLogSpace: the on-the-fly grid is the same
// grid LogSpace materializes, chunk boundaries included.
func TestAppendLogSpaceMatchesLogSpace(t *testing.T) {
	p := machine.MustByID("arndale-gpu").Single
	k := model.NewKernel(p)
	const n = 97
	lo, hi := units.Intensity(0.01), units.Intensity(3000)
	grid := model.LogSpace(lo, hi, n)
	l0, l1 := math.Log(lo.Ratio()), math.Log(hi.Ratio())
	var pts []model.Point
	for start := 0; start < n; start += 16 { // uneven chunking on purpose
		end := start + 16
		if end > n {
			end = n
		}
		pts = k.AppendLogSpace(pts, l0, l1, start, end, n)
	}
	if len(pts) != n {
		t.Fatalf("appended %d points, want %d", len(pts), n)
	}
	for idx, pt := range pts {
		iv := grid[idx].Ratio()
		if math.Float64bits(pt.Intensity) != math.Float64bits(iv) {
			t.Fatalf("point %d intensity %x, LogSpace gives %x", idx,
				math.Float64bits(pt.Intensity), math.Float64bits(iv))
		}
		if want := k.PointAt(iv); pt != want {
			t.Fatalf("point %d = %+v, PointAt gives %+v", idx, pt, want)
		}
	}
}

// TestKernelZeroAllocs pins the acceptance criterion directly: a full
// chunk of grid-point evaluations into a pre-sized caller-owned buffer
// performs zero allocations.
func TestKernelZeroAllocs(t *testing.T) {
	p := machine.MustByID("gtx-titan").Single
	k := model.NewKernel(p)
	buf := make([]model.Point, 0, 512)
	l0, l1 := math.Log(0.001), math.Log(1000)
	allocs := testing.AllocsPerRun(50, func() {
		buf = k.AppendLogSpace(buf[:0], l0, l1, 0, 512, 512)
	})
	if allocs != 0 {
		t.Fatalf("AppendLogSpace allocates %.1f times per 512-point chunk, want 0", allocs)
	}
	var sink model.Point
	allocs = testing.AllocsPerRun(50, func() {
		sink = k.PointAt(4)
	})
	if allocs != 0 {
		t.Fatalf("PointAt allocates %.1f times per call, want 0", allocs)
	}
	_ = sink
}
