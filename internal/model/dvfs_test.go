package model

import (
	"math"
	"testing"
	"testing/quick"

	"archline/internal/units"
)

// titanDVFS builds a plausible DVFS envelope around the Titan's
// published operating point (837 MHz core, ~1.16 V class).
func titanDVFS() DVFS {
	return DVFS{
		Base:         titanParams(),
		F0:           837e6,
		FMin:         324e6,
		FMax:         993e6,
		V0:           1.162,
		VMin:         0.875,
		FVmin:        540e6,
		MemScaling:   0, // discrete GDDR5: memory clock independent
		Pi1FreqShare: 0.35,
	}
}

// socDVFS builds a mobile-SoC-style envelope (shared clock domain) for
// the Arndale CPU.
func socDVFS() DVFS {
	return DVFS{
		Base:         arndaleGPUParams(),
		F0:           1.7e9,
		FMin:         200e6,
		FMax:         1.7e9,
		V0:           1.2,
		VMin:         0.9,
		FVmin:        800e6,
		MemScaling:   0.5,
		Pi1FreqShare: 0.5,
	}
}

func TestDVFSValidate(t *testing.T) {
	if err := titanDVFS().Validate(); err != nil {
		t.Fatalf("valid DVFS rejected: %v", err)
	}
	cases := []func(*DVFS){
		func(d *DVFS) { d.F0 = 0 },
		func(d *DVFS) { d.FMin = 0 },
		func(d *DVFS) { d.FMax = d.FMin / 2 },
		func(d *DVFS) { d.F0 = d.FMax * 2 },
		func(d *DVFS) { d.V0 = 0 },
		func(d *DVFS) { d.VMin = d.V0 * 2 },
		func(d *DVFS) { d.FVmin = 0 },
		func(d *DVFS) { d.FVmin = d.F0 * 2 },
		func(d *DVFS) { d.MemScaling = 1.5 },
		func(d *DVFS) { d.Pi1FreqShare = -0.1 },
		func(d *DVFS) { d.Base.TauFlop = 0 },
	}
	for i, mutate := range cases {
		d := titanDVFS()
		mutate(&d)
		if d.Validate() == nil {
			t.Errorf("case %d: invalid DVFS accepted", i)
		}
	}
}

func TestDVFSVoltageCurve(t *testing.T) {
	d := titanDVFS()
	if v := d.Voltage(d.FVmin / 2); v != d.VMin {
		t.Errorf("below floor: %v, want VMin", v)
	}
	if v := d.Voltage(d.FVmin); v != d.VMin {
		t.Errorf("at floor: %v, want VMin", v)
	}
	if v := d.Voltage(d.F0); math.Abs(v-d.V0) > 1e-12 {
		t.Errorf("at nominal: %v, want V0", v)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for f := d.FMin; f <= d.FMax; f += 10e6 {
		v := d.Voltage(f)
		if v < prev {
			t.Fatalf("voltage decreased at %v Hz", f)
		}
		prev = v
	}
	// Turbo extrapolation exceeds V0.
	if d.Voltage(d.FMax) <= d.V0 {
		t.Error("turbo voltage should exceed nominal")
	}
}

func TestDVFSAtNominalIsIdentityExceptPi1(t *testing.T) {
	d := titanDVFS()
	p, err := d.AtFrequency(d.F0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(p.TauFlop), float64(d.Base.TauFlop), 1e-12, "tau_flop at F0")
	approx(t, float64(p.TauMem), float64(d.Base.TauMem), 1e-12, "tau_mem at F0")
	approx(t, float64(p.EpsFlop), float64(d.Base.EpsFlop), 1e-12, "eps_flop at F0")
	approx(t, float64(p.EpsMem), float64(d.Base.EpsMem), 1e-12, "eps_mem at F0")
	approx(t, float64(p.Pi1), float64(d.Base.Pi1), 1e-12, "pi_1 at F0")
	approx(t, float64(p.DeltaPi), float64(d.Base.DeltaPi), 0, "cap preserved")
}

func TestDVFSScalingDirections(t *testing.T) {
	d := titanDVFS()
	slow, err := d.AtFrequency(d.FMin)
	if err != nil {
		t.Fatal(err)
	}
	// Slower clock: lower peak flops, cheaper flops (V^2), lower pi_1.
	if slow.PeakFlopRate() >= d.Base.PeakFlopRate() {
		t.Error("downclocking should reduce peak flops")
	}
	if slow.EpsFlop >= d.Base.EpsFlop {
		t.Error("downvolting should reduce energy per flop")
	}
	if slow.Pi1 >= d.Base.Pi1 {
		t.Error("downclocking should reduce pi_1")
	}
	// Discrete GPU: memory bandwidth unchanged (MemScaling = 0).
	approx(t, float64(slow.TauMem), float64(d.Base.TauMem), 1e-12, "GDDR bw at FMin")
	approx(t, float64(slow.EpsMem), float64(d.Base.EpsMem), 1e-12, "GDDR eps at FMin")

	// SoC: memory partially follows the clock.
	soc := socDVFS()
	socSlow, err := soc.AtFrequency(soc.FMin)
	if err != nil {
		t.Fatal(err)
	}
	if socSlow.PeakByteRate() >= soc.Base.PeakByteRate() {
		t.Error("SoC downclocking should reduce bandwidth")
	}
	if socSlow.EpsMem >= soc.Base.EpsMem {
		t.Error("SoC downvolting should reduce memory energy")
	}
	// Expected ratio: at FMin, half the bandwidth followed a clock at
	// fr = FMin/F0.
	fr := soc.FMin / soc.F0
	wantRate := float64(soc.Base.PeakByteRate()) * (0.5 + 0.5*fr)
	approx(t, float64(socSlow.PeakByteRate()), wantRate, 1e-9, "SoC bw scaling")
}

func TestDVFSOutOfRange(t *testing.T) {
	d := titanDVFS()
	if _, err := d.AtFrequency(d.FMin / 2); err == nil {
		t.Error("below-range frequency should error")
	}
	if _, err := d.AtFrequency(d.FMax * 2); err == nil {
		t.Error("above-range frequency should error")
	}
	bad := d
	bad.V0 = 0
	if _, err := bad.AtFrequency(d.F0); err == nil {
		t.Error("invalid config should error from AtFrequency")
	}
	if _, err := bad.EnergyOptimalFrequency(1); err == nil {
		t.Error("invalid config should error from EnergyOptimalFrequency")
	}
	if _, err := d.EnergyOptimalFrequency(0); err == nil {
		t.Error("zero intensity should error")
	}
	if _, err := bad.RaceToHaltGain(1e9, 1, 10); err == nil {
		t.Error("invalid config should error from RaceToHaltGain")
	}
	if _, err := d.RaceToHaltGain(0, 1, 10); err == nil {
		t.Error("zero work should error")
	}
}

func TestEnergyOptimalFrequency(t *testing.T) {
	d := titanDVFS()
	// Compute-bound workload: the optimum balances pi_1*t against V^2.
	fOpt, err := d.EnergyOptimalFrequency(512)
	if err != nil {
		t.Fatal(err)
	}
	if fOpt < d.FMin || fOpt > d.FMax {
		t.Fatalf("optimal frequency %v outside range", fOpt)
	}
	// The optimum beats (or ties) both endpoints.
	eAt := func(f float64) float64 {
		p, err := d.AtFrequency(f)
		if err != nil {
			t.Fatal(err)
		}
		return float64(p.EnergyPerFlopAt(512))
	}
	eOpt := eAt(fOpt)
	if eOpt > eAt(d.FMin)*(1+1e-9) || eOpt > eAt(d.FMax)*(1+1e-9) {
		t.Errorf("optimum %v worse than an endpoint (%v, %v)", eOpt, eAt(d.FMin), eAt(d.FMax))
	}
	// Memory-bound workload on a discrete GPU: bandwidth does not scale,
	// so the energy-optimal core clock is at (or near) the bottom —
	// downclocking only sheds power.
	fMem, err := d.EnergyOptimalFrequency(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if fMem > d.FMin*1.2 {
		t.Errorf("memory-bound optimum %v should sit near FMin %v", fMem, d.FMin)
	}
}

func TestRaceToHaltGain(t *testing.T) {
	// Without turbo (FMax = F0) the Titan races uncapped: with a deep
	// idle state (5 W), race-to-halt wins for compute-bound work.
	d := titanDVFS()
	d.FMax = d.F0
	w := units.GFlops(100)
	gain, err := d.RaceToHaltGain(w, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	if gain >= 1 {
		t.Errorf("deep idle should favour race-to-halt, gain %v", gain)
	}
	// With idle power equal to full pi_1 (no idle savings), crawling at
	// lower voltage wins: gain > 1.
	gain, err = d.RaceToHaltGain(w, 512, d.Base.Pi1+units.Power(50))
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 1 {
		t.Errorf("no idle savings should favour crawling, gain %v", gain)
	}
}

func TestRaceToHaltCapInteraction(t *testing.T) {
	// With turbo enabled, racing pushes the Titan's flop power past
	// DeltaPi: the cap throttles the race, and even a deep idle state no
	// longer makes racing worthwhile. This is the capped model talking:
	// a power cap erodes race-to-halt.
	d := titanDVFS()
	w := units.GFlops(100)
	turbo, err := d.AtFrequency(d.FMax)
	if err != nil {
		t.Fatal(err)
	}
	if turbo.Powerful() {
		t.Fatal("premise: turbo Titan should be power-capped")
	}
	gain, err := d.RaceToHaltGain(w, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	noTurbo := d
	noTurbo.FMax = d.F0
	gainNoTurbo, err := noTurbo.RaceToHaltGain(w, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= gainNoTurbo {
		t.Errorf("racing into the cap (gain %v) should look worse than racing uncapped (gain %v)",
			gain, gainNoTurbo)
	}
}

// Property: AtFrequency always yields valid params inside the range.
func TestQuickDVFSValidity(t *testing.T) {
	d := titanDVFS()
	f := func(x float64) bool {
		frac := math.Abs(math.Mod(x, 1))
		if math.IsNaN(frac) {
			return true
		}
		freq := d.FMin + frac*(d.FMax-d.FMin)
		p, err := d.AtFrequency(freq)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: energy per flop at fixed intensity is minimized at the
// reported optimal frequency (spot-check against a grid).
func TestQuickEnergyOptimal(t *testing.T) {
	d := socDVFS()
	f := func(ix float64) bool {
		i := units.Intensity(math.Exp(finMod(ix, 5)))
		fOpt, err := d.EnergyOptimalFrequency(i)
		if err != nil {
			return false
		}
		pOpt, err := d.AtFrequency(fOpt)
		if err != nil {
			return false
		}
		eOpt := float64(pOpt.EnergyPerFlopAt(i))
		for k := 0; k <= 10; k++ {
			fk := d.FMin + float64(k)/10*(d.FMax-d.FMin)
			p, err := d.AtFrequency(fk)
			if err != nil {
				return false
			}
			if float64(p.EnergyPerFlopAt(i)) < eOpt*(1-1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
