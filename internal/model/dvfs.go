package model

import (
	"errors"
	"math"

	"archline/internal/units"
)

// This file extends the capped model with dynamic voltage/frequency
// scaling (DVFS), the mechanism the power-bounding literature the paper
// builds on (Rountree et al., "Beyond DVFS") assumes. The paper models a
// power cap as throttling operation issue; DVFS instead slows the clock
// and lowers voltage together. The two compose: a DVFS state rescales
// the machine's fundamental constants, and the capped model then applies
// at the rescaled operating point.
//
// Scaling laws (standard CMOS first-order):
//
//   - frequency f scales throughput: tau(f) = tau(f0) * f0/f for the
//     processor side; memory bandwidth scales only partially (the DRAM
//     interface has its own clock), controlled by MemScaling in [0,1];
//   - dynamic energy per operation scales with V^2, and V scales roughly
//     linearly with f over the DVFS range: eps(f) = eps(f0) * (V/V0)^2;
//   - constant power has a frequency-independent component (uncore,
//     board, leakage at fixed temperature) and a clock-tree component
//     that scales like f*V^2.
type DVFS struct {
	// Base is the machine at the reference frequency F0.
	Base Params
	// F0 is the reference (nominal) frequency in Hz.
	F0 float64
	// FMin and FMax bound the legal frequency range.
	FMin, FMax float64
	// V0 is the supply voltage at F0; VMin is the voltage floor reached
	// at (and below) FVmin. Between FVmin and F0 voltage interpolates
	// linearly with frequency.
	V0, VMin float64
	// FVmin is the frequency at/below which voltage stops dropping.
	FVmin float64
	// MemScaling in [0,1] is the fraction of memory bandwidth that
	// follows the core clock (0: independent memory clock; 1: fully
	// coupled, as on integrated SoCs).
	MemScaling float64
	// Pi1FreqShare in [0,1] is the fraction of pi_1 that scales with
	// f*V^2 (clock tree, caches); the rest is frequency-independent.
	Pi1FreqShare float64
}

// Validate checks the DVFS configuration.
func (d DVFS) Validate() error {
	if err := d.Base.Validate(); err != nil {
		return err
	}
	if d.F0 <= 0 || d.FMin <= 0 || d.FMax < d.FMin {
		return errors.New("model: DVFS frequency range invalid")
	}
	if d.F0 < d.FMin || d.F0 > d.FMax {
		return errors.New("model: DVFS reference frequency outside range")
	}
	if d.V0 <= 0 || d.VMin <= 0 || d.VMin > d.V0 {
		return errors.New("model: DVFS voltage range invalid")
	}
	if d.FVmin <= 0 || d.FVmin > d.F0 {
		return errors.New("model: DVFS voltage-floor frequency invalid")
	}
	if d.MemScaling < 0 || d.MemScaling > 1 {
		return errors.New("model: MemScaling must be in [0,1]")
	}
	if d.Pi1FreqShare < 0 || d.Pi1FreqShare > 1 {
		return errors.New("model: Pi1FreqShare must be in [0,1]")
	}
	return nil
}

// Voltage returns the supply voltage at frequency f: linear in f above
// the floor, clamped to VMin below it.
func (d DVFS) Voltage(f float64) float64 {
	if f <= d.FVmin {
		return d.VMin
	}
	if f >= d.F0 {
		// Extrapolate linearly above nominal (turbo voltages rise).
		return d.V0 + (d.V0-d.VMin)*(f-d.F0)/(d.F0-d.FVmin)
	}
	frac := (f - d.FVmin) / (d.F0 - d.FVmin)
	return d.VMin + frac*(d.V0-d.VMin)
}

// AtFrequency returns the machine's capped-model parameters at frequency
// f, applying the scaling laws above. DeltaPi is preserved: the cap is
// an external budget, not a property of the operating point.
func (d DVFS) AtFrequency(f float64) (Params, error) {
	if err := d.Validate(); err != nil {
		return Params{}, err
	}
	if f < d.FMin || f > d.FMax {
		return Params{}, errors.New("model: frequency outside DVFS range")
	}
	v := d.Voltage(f)
	vr := v / d.V0
	fr := f / d.F0

	p := d.Base
	// Processor throughput follows the clock.
	p.TauFlop = units.TimePerFlop(float64(d.Base.TauFlop) / fr)
	// Memory bandwidth follows only partially.
	memRate := 1/float64(d.Base.TauMem)*(1-d.MemScaling) +
		1/float64(d.Base.TauMem)*d.MemScaling*fr
	p.TauMem = units.TimePerByte(1 / memRate)
	// Dynamic energy per op scales with V^2 (CV^2 switching energy).
	p.EpsFlop = units.EnergyPerFlop(float64(d.Base.EpsFlop) * vr * vr)
	p.EpsMem = units.EnergyPerByte(float64(d.Base.EpsMem) * (1 - d.MemScaling + d.MemScaling*vr*vr))
	// Constant power: fixed share + clock-tree share scaling as f*V^2.
	fixed := d.Base.Pi1.Watts() * (1 - d.Pi1FreqShare)
	clocked := d.Base.Pi1.Watts() * d.Pi1FreqShare * fr * vr * vr
	p.Pi1 = units.Power(fixed + clocked)
	return p, nil
}

// EnergyOptimalFrequency finds, for a workload at intensity i, the
// frequency in [FMin, FMax] minimizing energy per flop, by golden-section
// search (E(f) at fixed I is unimodal under these scaling laws: too slow
// burns constant power, too fast burns V^2 dynamic energy).
func (d DVFS) EnergyOptimalFrequency(i units.Intensity) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if i <= 0 {
		return 0, errors.New("model: intensity must be positive")
	}
	e := func(f float64) float64 {
		p, err := d.AtFrequency(f)
		if err != nil {
			return math.Inf(1)
		}
		return float64(p.EnergyPerFlopAt(i))
	}
	const phi = 0.6180339887498949
	lo, hi := d.FMin, d.FMax
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := e(x1), e(x2)
	for iter := 0; iter < 200 && hi-lo > 1e-6*d.F0; iter++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = e(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = e(x2)
		}
	}
	return (lo + hi) / 2, nil
}

// RaceToHaltGain compares "race" (run at FMax, then idle at pi_idle for
// the remaining time) against "crawl" (run at the slowest frequency that
// still finishes within the race-plus-idle window) for a workload of w
// flops at intensity i over a deadline equal to the crawl duration.
// It returns energyRace/energyCrawl: values above 1 mean crawling wins.
func (d DVFS) RaceToHaltGain(w units.Flops, i units.Intensity, piIdle units.Power) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if w <= 0 || i <= 0 {
		return 0, errors.New("model: work and intensity must be positive")
	}
	fast, err := d.AtFrequency(d.FMax)
	if err != nil {
		return 0, err
	}
	slow, err := d.AtFrequency(d.FMin)
	if err != nil {
		return 0, err
	}
	q := i.Bytes(w)
	tFast := fast.Time(w, q)
	eFast := fast.Energy(w, q)
	tSlow := slow.Time(w, q)
	eSlow := slow.Energy(w, q)
	if tSlow < tFast {
		return 0, errors.New("model: slow point is not slower; check scaling")
	}
	// Race finishes early and idles until the crawl deadline.
	eRace := eFast.Joules() + piIdle.Watts()*(tSlow-tFast).Seconds()
	return eRace / eSlow.Joules(), nil
}
