package model

import (
	"math"
	"testing"
)

func TestLogSpace(t *testing.T) {
	g := LogSpace(0.125, 256, 12)
	if len(g) != 12 {
		t.Fatalf("len = %d", len(g))
	}
	approx(t, float64(g[0]), 0.125, 1e-12, "first")
	approx(t, float64(g[11]), 256, 1e-12, "last")
	// Uniform ratio between neighbours.
	r0 := float64(g[1]) / float64(g[0])
	for i := 2; i < len(g); i++ {
		r := float64(g[i]) / float64(g[i-1])
		approx(t, r, r0, 1e-9, "ratio")
	}
	if LogSpace(0, 1, 5) != nil {
		t.Error("lo=0 should return nil")
	}
	if LogSpace(2, 1, 5) != nil {
		t.Error("hi<lo should return nil")
	}
	if got := LogSpace(3, 5, 1); len(got) != 1 || got[0] != 3 {
		t.Error("n=1 returns lo")
	}
	if LogSpace(1, 2, 0) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestCrossoverEnergyTitanVsArndale(t *testing.T) {
	// Fig. 1 middle panel: "the two systems match in flops per Joule for
	// intensities as high as 4 flop:Byte". Below the crossover the
	// Arndale GPU is at least competitive; above it the Titan wins.
	titan, arndale := titanParams(), arndaleGPUParams()
	x, err := Crossover(titan, arndale, MetricFlopsPerJoule, 0.125, 256)
	if err != nil {
		t.Fatalf("crossover: %v", err)
	}
	if float64(x) < 1.5 || float64(x) > 8 {
		t.Errorf("energy crossover at I=%v, paper says ~4", x)
	}
	// Above the crossover Titan is more energy-efficient.
	if !(titan.FlopsPerJouleAt(x*4) > arndale.FlopsPerJouleAt(x*4)) {
		t.Error("Titan should win on energy above the crossover")
	}
	// Titan always wins on raw performance.
	for _, i := range LogSpace(0.125, 256, 50) {
		if !(titan.FlopRateAt(i) > arndale.FlopRateAt(i)) {
			t.Fatalf("Titan should be faster at every intensity, failed at %v", i)
		}
	}
}

func TestCrossoverErrors(t *testing.T) {
	titan := titanParams()
	if _, err := Crossover(titan, titan, MetricFlopRate, 0, 1); err == nil {
		t.Error("lo=0 should error")
	}
	if _, err := Crossover(titan, titan, MetricFlopRate, 2, 1); err == nil {
		t.Error("hi<lo should error")
	}
	// Titan vs Titan: identical metrics -> f0 == 0 -> returns lo.
	x, err := Crossover(titan, titan, MetricFlopRate, 1, 2)
	if err != nil || x != 1 {
		t.Errorf("identical machines: x=%v err=%v, want lo", x, err)
	}
	// Titan vs Arndale on flop rate: no crossover (Titan always faster).
	if _, err := Crossover(titan, arndaleGPUParams(), MetricFlopRate, 0.125, 256); err != ErrNoCrossover {
		t.Errorf("expected ErrNoCrossover, got %v", err)
	}
}

func TestCrossoversScan(t *testing.T) {
	titan, arndale := titanParams(), arndaleGPUParams()
	// Aggregate 47 Arndale GPUs: power-matched supercomputer of fig. 1.
	agg, err := arndale.Scale(47)
	if err != nil {
		t.Fatal(err)
	}
	xs := Crossovers(titan, agg, MetricFlopRate, 0.125, 256, 400)
	if len(xs) == 0 {
		t.Fatal("power-matched aggregate should cross Titan in performance")
	}
	// The paper: aggregate wins ("up to 1.6x") for bandwidth-bound codes
	// with flop:Byte less than about 4, loses above.
	x := float64(xs[0])
	if x < 1 || x > 16 {
		t.Errorf("performance crossover at I=%v, expected a few flop:Byte", x)
	}
	if !(agg.FlopRateAt(0.25) > titan.FlopRateAt(0.25)) {
		t.Error("aggregate should win at I=0.25")
	}
	if !(titan.FlopRateAt(128) > agg.FlopRateAt(128)) {
		t.Error("Titan should win at I=128")
	}
	if Crossovers(titan, agg, MetricFlopRate, 0.125, 256, 1) != nil {
		t.Error("n<2 should return nil")
	}
}

func TestPowerMatch(t *testing.T) {
	titan, arndale := titanParams(), arndaleGPUParams()
	k, err := PowerMatch(titan, arndale)
	if err != nil {
		t.Fatal(err)
	}
	// Peak powers: Titan 123+164 = 287 W; Arndale 1.28+4.83 = 6.11 W.
	// 287/6.11 = 47.0 -> the paper's "47 x Arndale GPU" label.
	if k != 47 {
		t.Errorf("PowerMatch = %d, want 47 (fig. 1 label)", k)
	}
	// Small bigger than big: one copy suffices.
	k, err = PowerMatch(arndale, titan)
	if err != nil || k != 1 {
		t.Errorf("reverse match = %d, %v; want 1", k, err)
	}
	var zero Params
	if _, err := PowerMatch(titan, zero); err == nil {
		t.Error("zero-power small machine should error")
	}
}

func TestPowerMatchWatts(t *testing.T) {
	arndale := arndaleGPUParams()
	// Section V-D: 23 Arndale GPUs match a 140 W budget.
	k, err := PowerMatchWatts(arndale, 140)
	if err != nil {
		t.Fatal(err)
	}
	if k != 22 && k != 23 {
		t.Errorf("PowerMatchWatts(140) = %d, paper says 23", k)
	}
	if _, err := PowerMatchWatts(titanParams(), 10); err == nil {
		t.Error("budget below one copy should error")
	}
	var zero Params
	if _, err := PowerMatchWatts(zero, 100); err == nil {
		t.Error("zero-power machine should error")
	}
}

func TestMetricString(t *testing.T) {
	if MetricFlopRate.String() != "flop/time" ||
		MetricFlopsPerJoule.String() != "flop/energy" ||
		MetricAvgPower.String() != "power" ||
		Metric(9).String() != "unknown" {
		t.Error("metric names")
	}
	if !math.IsNaN(titanParams().valueAt(Metric(9), 1)) {
		t.Error("unknown metric should evaluate to NaN")
	}
	if got := titanParams().MetricAt(MetricAvgPower, 1); got != float64(titanParams().AvgPowerAt(1)) {
		t.Error("MetricAt should match AvgPowerAt")
	}
}
