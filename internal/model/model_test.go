package model

import (
	"math"
	"testing"
	"testing/quick"

	"archline/internal/units"
)

// titanParams are the GTX Titan's fitted parameters from Table I, used
// throughout the tests as a realistic capped machine.
func titanParams() Params {
	return Params{
		TauFlop: units.GFlopPerSec(4020).Inverse(),
		TauMem:  units.GBPerSec(239).Inverse(),
		EpsFlop: units.PicoJoulePerFlop(30.4),
		EpsMem:  units.PicoJoulePerByte(267),
		Pi1:     123,
		DeltaPi: 164,
	}
}

// arndaleGPUParams are the Arndale GPU (Mali T-604) fitted parameters.
func arndaleGPUParams() Params {
	return Params{
		TauFlop: units.GFlopPerSec(33.0).Inverse(),
		TauMem:  units.GBPerSec(8.39).Inverse(),
		EpsFlop: units.PicoJoulePerFlop(84.2),
		EpsMem:  units.PicoJoulePerByte(518),
		Pi1:     1.28,
		DeltaPi: 4.83,
	}
}

func approx(t *testing.T, got, want, relTol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want)+1e-300 {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestValidate(t *testing.T) {
	p := titanParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := p
	bad.TauFlop = 0
	if bad.Validate() == nil {
		t.Error("tau_flop = 0 should be rejected")
	}
	bad = p
	bad.EpsMem = -1
	if bad.Validate() == nil {
		t.Error("negative eps_mem should be rejected")
	}
	bad = p
	bad.Pi1 = units.Power(math.NaN())
	if bad.Validate() == nil {
		t.Error("NaN pi_1 should be rejected")
	}
	bad = p
	bad.TauMem = units.TimePerByte(math.Inf(1))
	if bad.Validate() == nil {
		t.Error("infinite tau_mem should be rejected")
	}
}

func TestDerivedQuantitiesTitan(t *testing.T) {
	p := titanParams()
	approx(t, float64(p.PiFlop()), 122.2, 0.01, "pi_flop")
	approx(t, float64(p.PiMem()), 63.8, 0.01, "pi_mem")
	// B_tau = peak flops / peak bandwidth = 4020/239 flop per byte.
	approx(t, float64(p.TimeBalance()), 4020.0/239.0, 1e-9, "B_tau")
	approx(t, float64(p.EnergyBalance()), 267.0/30.4, 1e-9, "B_eps")
	// Titan: pi_flop + pi_mem = 186 W > DeltaPi = 164 W, so the cap binds.
	if p.Powerful() {
		t.Error("Titan should be power-capped")
	}
	lo, hi, ok := p.CapBindingRange()
	if !ok {
		t.Fatal("Titan should have a cap-binding range")
	}
	if !(0 < lo && lo < units.Intensity(float64(p.TimeBalance()))) {
		t.Errorf("B_tau^- = %v out of order with B_tau = %v", lo, p.TimeBalance())
	}
	if !(hi > units.Intensity(float64(p.TimeBalance()))) {
		t.Errorf("B_tau^+ = %v should exceed B_tau = %v", hi, p.TimeBalance())
	}
}

func TestPeakEfficienciesMatchPaper(t *testing.T) {
	// Fig. 5 panel headers: Titan 16 Gflop/J and 1.3 GB/J;
	// Arndale GPU 8.1 Gflop/J and 1.5 GB/J.
	titan := titanParams()
	approx(t, float64(titan.PeakFlopsPerJoule()), 16e9, 0.05, "Titan Gflop/J")
	approx(t, float64(titan.PeakBytesPerJoule()), 1.3e9, 0.05, "Titan GB/J")

	arndale := arndaleGPUParams()
	approx(t, float64(arndale.PeakFlopsPerJoule()), 8.1e9, 0.05, "Arndale Gflop/J")
	approx(t, float64(arndale.PeakBytesPerJoule()), 1.5e9, 0.05, "Arndale GB/J")
}

func TestStreamEnergyPerByteSectionVB(t *testing.T) {
	// Section V-B: constant-power charge pi_1*tau_mem adds 515 pJ/B to
	// Titan for a total of 782 pJ/B.
	titan := titanParams()
	approx(t, float64(titan.StreamEnergyPerByte()), 782e-12, 0.01, "Titan total pJ/B")
	arndale := arndaleGPUParams()
	approx(t, float64(arndale.StreamEnergyPerByte()), 671e-12, 0.01, "Arndale total pJ/B")
	// Xeon Phi: eps_mem 136 pJ/B + 180 W / 181 GB/s = 994 pJ/B -> 1.13 nJ/B.
	phi := Params{
		TauFlop: units.GFlopPerSec(2020).Inverse(),
		TauMem:  units.GBPerSec(181).Inverse(),
		EpsFlop: units.PicoJoulePerFlop(6.05),
		EpsMem:  units.PicoJoulePerByte(136),
		Pi1:     180,
		DeltaPi: 36.1,
	}
	approx(t, float64(phi.StreamEnergyPerByte()), 1.13e-9, 0.01, "Phi total pJ/B")
	// The inversion: Arndale < Titan < Phi despite eps_mem ordering
	// Phi < Titan < Arndale.
	if !(arndale.StreamEnergyPerByte() < titan.StreamEnergyPerByte() &&
		titan.StreamEnergyPerByte() < phi.StreamEnergyPerByte()) {
		t.Error("section V-B streaming-energy inversion does not hold")
	}
}

func TestTimeMaxOfThree(t *testing.T) {
	p := titanParams()
	w := units.GFlops(100)

	// Very high intensity: compute term dominates unless capped.
	qSmall := units.Bytes(1)
	tm := p.Time(w, qSmall)
	// At I -> inf, dynamic power is pi_flop = 122 W < DeltaPi = 164 W, so
	// Titan is compute-bound, not capped.
	approx(t, float64(tm), float64(w)*float64(p.TauFlop), 1e-9, "compute-bound time")

	// Very low intensity: memory term dominates; pi_mem = 64 W < cap.
	qBig := units.GB(100)
	wSmall := units.Flops(1)
	tm = p.Time(wSmall, qBig)
	approx(t, float64(tm), float64(qBig)*float64(p.TauMem), 1e-9, "memory-bound time")

	// At balance, Titan needs 186 W > 164 W: capped.
	qBal := units.Intensity(p.TimeBalance()).Bytes(w)
	tc := p.Time(w, qBal)
	tu := p.TimeUncapped(w, qBal)
	if float64(tc) <= float64(tu) {
		t.Errorf("capped time %v should exceed uncapped %v at balance", tc, tu)
	}
	wantCap := (float64(w)*float64(p.EpsFlop) + float64(qBal)*float64(p.EpsMem)) / float64(p.DeltaPi)
	approx(t, float64(tc), wantCap, 1e-9, "cap-bound time")
}

func TestTimeZeroDeltaPi(t *testing.T) {
	p := titanParams()
	p.DeltaPi = 0
	if !math.IsInf(float64(p.Time(1, 1)), 1) {
		t.Error("zero usable power with nonzero work should take infinite time")
	}
	// Zero work: no dynamic energy, time 0.
	if p.Time(0, 0) != 0 {
		t.Error("zero work should take zero time even with zero cap")
	}
}

func TestEnergyComposition(t *testing.T) {
	p := titanParams()
	w, q := units.GFlops(10), units.GB(1)
	e := p.Energy(w, q)
	tm := p.Time(w, q)
	want := float64(w)*float64(p.EpsFlop) + float64(q)*float64(p.EpsMem) + float64(p.Pi1)*float64(tm)
	approx(t, float64(e), want, 1e-12, "energy composition")
	if p.EnergyUncapped(w, q) > e {
		t.Error("uncapped energy should not exceed capped energy (shorter T)")
	}
}

func TestAvgPowerClosedFormMatchesRatio(t *testing.T) {
	// Eq. (7) must equal E/T for all machines and intensities.
	for _, p := range []Params{titanParams(), arndaleGPUParams()} {
		for _, i := range LogSpace(1.0/1024, 1024, 200) {
			w := units.GFlops(1)
			q := i.Bytes(w)
			ratio := float64(p.AvgPower(w, q))
			closed := float64(p.AvgPowerAt(i))
			approx(t, closed, ratio, 1e-9, "eq(7) vs E/T at I="+units.FormatIntensity(i))
		}
	}
}

func TestAvgPowerLimits(t *testing.T) {
	p := titanParams()
	// I -> inf: power tends to pi_1 + pi_flop.
	pInf := float64(p.AvgPowerAt(1 << 30))
	approx(t, pInf, float64(p.Pi1)+float64(p.PiFlop()), 1e-3, "I->inf power")
	// I -> 0: power tends to pi_1 + pi_mem.
	p0 := float64(p.AvgPowerAt(units.Intensity(math.Ldexp(1, -30))))
	approx(t, p0, float64(p.Pi1)+float64(p.PiMem()), 1e-3, "I->0 power")
	// Peak power is pi_1 + DeltaPi for a capped machine.
	approx(t, float64(p.PeakAvgPower()), float64(p.Pi1)+float64(p.DeltaPi), 1e-12, "peak power capped")
	// In the cap interval, power is exactly pi_1 + DeltaPi.
	lo, hi, _ := p.CapBindingRange()
	mid := units.Intensity(math.Sqrt(float64(lo) * float64(hi)))
	approx(t, float64(p.AvgPowerAt(mid)), float64(p.Pi1)+float64(p.DeltaPi), 1e-12, "cap-interval power")

	if !math.IsNaN(float64(p.AvgPowerAt(0))) {
		t.Error("AvgPowerAt(0) should be NaN")
	}
}

func TestAvgPowerUncappedMachine(t *testing.T) {
	// A machine with plenty of power: peak average power occurs at B_tau.
	p := titanParams()
	p.DeltaPi = 1000
	if !p.Powerful() {
		t.Fatal("machine should be uncapped with DeltaPi=1000")
	}
	peak := float64(p.AvgPowerAt(units.Intensity(float64(p.TimeBalance()))))
	approx(t, peak, float64(p.Pi1)+float64(p.PiFlop())+float64(p.PiMem()), 1e-9, "peak at B_tau")
	approx(t, float64(p.PeakAvgPower()), peak, 1e-9, "PeakAvgPower uncapped")
	if _, _, ok := p.CapBindingRange(); ok {
		t.Error("uncapped machine should report no cap-binding range")
	}
}

func TestFlopRateAt(t *testing.T) {
	p := titanParams()
	// Compute-bound at very high intensity: peak flop rate.
	approx(t, float64(p.FlopRateAt(1<<20)), 4020e9, 1e-3, "peak flop rate")
	// Memory-bound at low intensity: rate = I * bandwidth.
	i := units.Intensity(0.25)
	approx(t, float64(p.FlopRateAt(i)), 0.25*239e9, 1e-3, "memory-bound rate")
	if p.FlopRateAt(0) != 0 {
		t.Error("FlopRateAt(0) should be 0")
	}
	// Capped at balance: rate < uncapped rate.
	bal := units.Intensity(float64(p.TimeBalance()))
	if !(p.FlopRateAt(bal) < p.FlopRateAtUncapped(bal)) {
		t.Error("capped rate should be below uncapped at balance for Titan")
	}
}

func TestEnergyPerFlopAt(t *testing.T) {
	p := titanParams()
	// At I->inf, E/W -> eps_flop + pi_1*tau_flop (Titan is not
	// flop-capped since pi_flop < DeltaPi).
	want := float64(p.EpsFlop) + float64(p.Pi1)*float64(p.TauFlop)
	approx(t, float64(p.EnergyPerFlopAt(1<<30)), want, 1e-6, "E/W at I->inf")
	approx(t, 1/float64(p.PeakFlopsPerJoule()), want, 1e-9, "PeakFlopsPerJoule consistency")
	if !math.IsInf(float64(p.EnergyPerFlopAt(0)), 1) {
		t.Error("EnergyPerFlopAt(0) should be +Inf")
	}
}

func TestRegimes(t *testing.T) {
	p := titanParams()
	lo, hi, _ := p.CapBindingRange()
	cases := []struct {
		i    units.Intensity
		want Regime
	}{
		{lo / 2, MemoryBound},
		{units.Intensity(math.Sqrt(float64(lo) * float64(hi))), CapBound},
		{hi * 2, ComputeBound},
	}
	for _, c := range cases {
		if got := p.RegimeAt(c.i); got != c.want {
			t.Errorf("RegimeAt(%v) = %v, want %v", c.i, got, c.want)
		}
	}
	// Letters.
	if MemoryBound.Letter() != "M" || CapBound.Letter() != "C" || ComputeBound.Letter() != "F" {
		t.Error("regime letters should be M/C/F as in fig. 6")
	}
	if MemoryBound.String() != "memory-bound" || Regime(99).String() != "unknown" || Regime(99).Letter() != "?" {
		t.Error("regime strings")
	}

	// Uncapped machine: no cap regime anywhere.
	u := p
	u.DeltaPi = 1000
	if u.RegimeAt(units.Intensity(float64(u.TimeBalance()))/2) != MemoryBound {
		t.Error("uncapped below balance should be memory-bound")
	}
	if u.RegimeAt(units.Intensity(float64(u.TimeBalance()))*2) != ComputeBound {
		t.Error("uncapped above balance should be compute-bound")
	}
}

func TestBalanceEdgeCases(t *testing.T) {
	p := titanParams()
	// DeltaPi below pi_flop: compute-bound regime unreachable.
	q := p
	q.DeltaPi = units.Power(float64(p.PiFlop()) * 0.5)
	if !math.IsInf(float64(q.TimeBalancePlus()), 1) {
		t.Error("B_tau^+ should be +Inf when DeltaPi <= pi_flop")
	}
	// DeltaPi below pi_mem: memory-bound regime unreachable.
	r := p
	r.DeltaPi = units.Power(float64(p.PiMem()) * 0.5)
	if float64(r.TimeBalanceMinus()) != 0 {
		t.Error("B_tau^- should be 0 when DeltaPi <= pi_mem")
	}
	// Free-flop machine (eps_flop = 0): B_eps infinite, B_tau^- = B_tau.
	f := p
	f.EpsFlop = 0
	if !math.IsInf(float64(f.EnergyBalance()), 1) {
		t.Error("B_eps should be +Inf when eps_flop = 0")
	}
}

func TestThrottleFactor(t *testing.T) {
	p := titanParams()
	if tf := p.ThrottleFactor(1 << 20); math.Abs(tf-1) > 1e-9 {
		t.Errorf("compute-bound throttle = %v, want 1 (Titan has flop headroom)", tf)
	}
	bal := units.Intensity(float64(p.TimeBalance()))
	tf := p.ThrottleFactor(bal)
	want := (float64(p.PiFlop()) + float64(p.PiMem())) / float64(p.DeltaPi)
	approx(t, tf, want, 1e-9, "throttle at balance")
	if p.ThrottleFactor(0) != 1 {
		t.Error("ThrottleFactor(0) defined as 1")
	}
}

func TestWithCap(t *testing.T) {
	p := titanParams()
	h, err := p.WithCap(0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(h.DeltaPi), 82, 1e-12, "half cap")
	if _, err := p.WithCap(-1); err == nil {
		t.Error("negative cap fraction should error")
	}
	if _, err := p.WithCap(math.NaN()); err == nil {
		t.Error("NaN cap fraction should error")
	}
}

func TestScale(t *testing.T) {
	p := arndaleGPUParams()
	s, err := p.Scale(47)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(s.PeakFlopRate()), 47*33e9, 1e-9, "scaled peak flops")
	approx(t, float64(s.PeakByteRate()), 47*8.39e9, 1e-9, "scaled bandwidth")
	approx(t, float64(s.Pi1), 47*1.28, 1e-9, "scaled pi_1")
	approx(t, float64(s.DeltaPi), 47*4.83, 1e-9, "scaled cap")
	// Balance points are scale-invariant.
	approx(t, float64(s.TimeBalance()), float64(p.TimeBalance()), 1e-9, "B_tau invariant")
	approx(t, float64(s.EnergyBalance()), float64(p.EnergyBalance()), 1e-9, "B_eps invariant")
	for _, k := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := p.Scale(k); err == nil {
			t.Errorf("Scale(%v) should error", k)
		}
	}
}

func TestPredict(t *testing.T) {
	p := titanParams()
	w, q := units.GFlops(50), units.GB(1)
	pr := p.Predict(w, q)
	if pr.W != w || pr.Q != q {
		t.Error("prediction should echo workload")
	}
	approx(t, float64(pr.I), 50, 1e-9, "intensity")
	approx(t, float64(pr.Time), float64(p.Time(w, q)), 0, "time")
	approx(t, float64(pr.Energy), float64(p.Energy(w, q)), 0, "energy")
	approx(t, float64(pr.AvgPower), float64(p.AvgPowerAt(50)), 1e-9, "power")
	if pr.Regime != p.RegimeAt(50) {
		t.Error("regime mismatch")
	}
}

// randomParams builds a plausible random machine from four uniform
// deviates, for property tests.
func randomParams(a, b, c, d float64) Params {
	u := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0.5
		}
		return math.Abs(math.Mod(x, 1))
	}
	return Params{
		TauFlop: units.TimePerFlop(1e-12 * (1 + 1e3*u(a))),
		TauMem:  units.TimePerByte(1e-11 * (1 + 1e3*u(b))),
		EpsFlop: units.EnergyPerFlop(1e-12 * (1 + 100*u(c))),
		EpsMem:  units.EnergyPerByte(1e-11 * (1 + 100*u(d))),
		Pi1:     units.Power(1 + 100*u(a+b)),
		DeltaPi: units.Power(1 + 200*u(c+d)),
	}
}

// finMod reduces an arbitrary float into [-m, m], mapping non-finite
// inputs to a fixed interior point so quick-generated extremes stay legal.
func finMod(x, m float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return m / 2
	}
	return math.Mod(x, m)
}

// Property: capped time >= uncapped time; equality iff cap term does not
// dominate.
func TestQuickCappedDominatesUncapped(t *testing.T) {
	f := func(a, b, c, d, wi, ii float64) bool {
		p := randomParams(a, b, c, d)
		w := units.Flops(1 + 1e9*math.Abs(finMod(wi, 1)))
		i := units.Intensity(math.Exp(finMod(ii, 8))) // I in [e^-8, e^8]
		q := i.Bytes(w)
		return float64(p.Time(w, q)) >= float64(p.TimeUncapped(w, q))-1e-30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: average power lies in [pi_1, pi_1 + min(DeltaPi, pi_f+pi_m)].
func TestQuickPowerBounds(t *testing.T) {
	f := func(a, b, c, d, ii float64) bool {
		p := randomParams(a, b, c, d)
		i := units.Intensity(math.Exp(finMod(ii, 10)))
		pw := float64(p.AvgPowerAt(i))
		lo := float64(p.Pi1)
		hi := float64(p.PeakAvgPower())
		return pw >= lo-1e-9*lo && pw <= hi*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: B_tau^- <= B_tau <= B_tau^+.
func TestQuickBalanceOrdering(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		p := randomParams(a, b, c, d)
		lo := float64(p.TimeBalanceMinus())
		mid := float64(p.TimeBalance())
		hi := float64(p.TimeBalancePlus())
		return lo <= mid*(1+1e-12) && mid <= hi*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: E = P*T exactly (definition consistency).
func TestQuickEnergyPowerTimeConsistency(t *testing.T) {
	f := func(a, b, c, d, wi, ii float64) bool {
		p := randomParams(a, b, c, d)
		w := units.Flops(1 + 1e9*math.Abs(finMod(wi, 1)))
		i := units.Intensity(math.Exp(finMod(ii, 8)))
		q := i.Bytes(w)
		e := float64(p.Energy(w, q))
		pt := float64(p.AvgPower(w, q)) * float64(p.Time(w, q))
		return math.Abs(e-pt) <= 1e-9*e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: time and energy are monotone non-decreasing in W and in Q.
func TestQuickMonotonicity(t *testing.T) {
	f := func(a, b, c, d, wi, qi float64) bool {
		p := randomParams(a, b, c, d)
		w := units.Flops(1 + 1e9*math.Abs(finMod(wi, 1)))
		q := units.Bytes(1 + 1e9*math.Abs(finMod(qi, 1)))
		t1, e1 := p.Time(w, q), p.Energy(w, q)
		t2, e2 := p.Time(w*2, q), p.Energy(w*2, q)
		t3, e3 := p.Time(w, q*2), p.Energy(w, q*2)
		return t2 >= t1 && e2 >= e1 && t3 >= t1 && e3 >= e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Scale(k) divides time by exactly k under weak scaling (same
// W, Q) for uncapped machines, and never slows the machine down.
func TestQuickScaleSpeedsUp(t *testing.T) {
	f := func(a, b, c, d, ki float64) bool {
		p := randomParams(a, b, c, d)
		k := 1 + 10*math.Abs(finMod(ki, 1))
		s, err := p.Scale(k)
		if err != nil {
			return false
		}
		w, q := units.GFlops(1), units.GB(1)
		return float64(s.Time(w, q)) <= float64(p.Time(w, q))*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: regime classification agrees with which term of eq. (3)
// actually dominates.
func TestQuickRegimeConsistency(t *testing.T) {
	f := func(a, b, c, d, ii float64) bool {
		p := randomParams(a, b, c, d)
		i := units.Intensity(math.Exp(finMod(ii, 10)))
		w := units.Flops(1e9)
		q := i.Bytes(w)
		tFlop := float64(w) * float64(p.TauFlop)
		tMem := float64(q) * float64(p.TauMem)
		tCap := (float64(w)*float64(p.EpsFlop) + float64(q)*float64(p.EpsMem)) / float64(p.DeltaPi)
		tMax := math.Max(tFlop, math.Max(tMem, tCap))
		const tol = 1 + 1e-9
		switch p.RegimeAt(i) {
		case ComputeBound:
			return tFlop*tol >= tMax
		case MemoryBound:
			return tMem*tol >= tMax
		case CapBound:
			return tCap*tol >= tMax
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
