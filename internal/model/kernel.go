package model

import (
	"math"
)

// Kernel is the table-driven evaluator behind the sweep hot paths: the
// handful of float64 coefficients eqs. (2), (4), and (7) need, computed
// once per Params value (and therefore once per platform, precision,
// DVFS setting, or cap fraction), so that evaluating one grid point is
// straight-line float math — no interface dispatch, no map lookups,
// and zero allocations.
//
// Every per-point method replicates the corresponding Params method's
// floating-point operation sequence exactly, with the intensity-
// independent subexpressions (B_tau, pi_flop, pi_mem, B_tau^±, the
// Powerful predicate) hoisted to construction time. IEEE-754 arithmetic
// is deterministic, so hoisting a subexpression that does not depend on
// the grid point cannot change any result bit: Kernel output is
// bit-identical to Params output for every input, which the
// TestKernelMatchesParamsBitwise pin enforces across the platform
// database.
//
// The fields are intentionally raw float64 — several (the cap terms,
// reciprocal balances) have dimensions no units type names. The single
// type-level directive below declares the whole coefficient table as a
// dimensioned sink for archlint's dimcheck analyzer.
//
//archlint:dim any
type Kernel struct {
	tf, tm float64 // tau_flop (s/flop), tau_mem (s/B)
	ef, em float64 // eps_flop (J/flop), eps_mem (J/B)
	pi1    float64 // constant power (W)
	dp     float64 // usable power cap DeltaPi (W)

	bt       float64 // B_tau = tau_mem/tau_flop
	pf, pm   float64 // pi_flop, pi_mem (W)
	btPlus   float64 // B_tau^+ of eq. (5)
	btMinus  float64 // B_tau^- of eq. (6)
	powerful bool    // DeltaPi >= pi_flop + pi_mem: the cap never binds
}

// NewKernel precomputes the coefficient table for p. Construction costs
// a few dozen flops; callers sweeping the same machine should build the
// kernel once and reuse it across grid points and requests.
func NewKernel(p Params) Kernel {
	return Kernel{
		tf:       float64(p.TauFlop),
		tm:       float64(p.TauMem),
		ef:       float64(p.EpsFlop),
		em:       float64(p.EpsMem),
		pi1:      p.Pi1.Watts(),
		dp:       p.DeltaPi.Watts(),
		bt:       p.TimeBalance().Ratio(),
		pf:       p.PiFlop().Watts(),
		pm:       p.PiMem().Watts(),
		btPlus:   p.TimeBalancePlus().Ratio(),
		btMinus:  p.TimeBalanceMinus().Ratio(),
		powerful: p.Powerful(),
	}
}

// timePerFlopAt is T/W from eq. (4), Params.timePerFlopAt with the
// balance ratio read from the table.
func (k *Kernel) timePerFlopAt(iv float64) float64 {
	capTerm := 0.0
	if dyn := k.ef + k.em/iv; dyn > 0 {
		capTerm = dyn / k.dp / k.tf
	}
	return k.tf * math.Max(1, math.Max(k.bt/iv, capTerm))
}

// FlopRateAt is Params.FlopRateAt on a raw intensity ratio.
func (k *Kernel) FlopRateAt(iv float64) float64 {
	if iv <= 0 {
		return 0
	}
	t := k.timePerFlopAt(iv)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return 1 / t
}

// FlopRateAtUncapped is Params.FlopRateAtUncapped on a raw ratio.
func (k *Kernel) FlopRateAtUncapped(iv float64) float64 {
	if iv <= 0 {
		return 0
	}
	t := k.tf * math.Max(1, k.bt/iv)
	return 1 / t
}

// EnergyPerFlopAt is Params.EnergyPerFlopAt on a raw ratio.
func (k *Kernel) EnergyPerFlopAt(iv float64) float64 {
	if iv <= 0 {
		return math.Inf(1)
	}
	dyn := k.ef + k.em/iv
	return dyn + k.pi1*k.timePerFlopAt(iv)
}

// FlopsPerJouleAt is Params.FlopsPerJouleAt on a raw ratio.
func (k *Kernel) FlopsPerJouleAt(iv float64) float64 {
	e := k.EnergyPerFlopAt(iv)
	if e <= 0 || math.IsInf(e, 1) {
		return 0
	}
	return 1 / e
}

// AvgPowerAt is eq. (7), Params.AvgPowerAt with the cap interval edges
// read from the table.
func (k *Kernel) AvgPowerAt(iv float64) float64 {
	if iv <= 0 {
		return math.NaN()
	}
	switch {
	case iv >= k.btPlus:
		return k.pi1 + k.pf + k.pm*k.bt/iv
	case iv <= k.btMinus:
		return k.pi1 + k.pf*iv/k.bt + k.pm
	default:
		return k.pi1 + k.dp
	}
}

// RegimeAt is Params.RegimeAt on a raw ratio.
func (k *Kernel) RegimeAt(iv float64) Regime {
	if math.IsNaN(iv) {
		return CapBound
	}
	if k.powerful {
		if iv < k.bt {
			return MemoryBound
		}
		return ComputeBound
	}
	switch {
	case iv >= k.btPlus:
		return ComputeBound
	case iv <= k.btMinus:
		return MemoryBound
	default:
		return CapBound
	}
}

// ThrottleFactor is Params.ThrottleFactor on a raw ratio: the capped
// over uncapped time of the unit-flop workload (W=1, Q=1/I).
func (k *Kernel) ThrottleFactor(iv float64) float64 {
	if iv <= 0 {
		return 1
	}
	q := 1 / iv
	tu := math.Max(k.tf, q*k.tm)
	tMem := q * k.tm
	dynamic := k.ef + q*k.em
	tCap := 0.0
	if dynamic > 0 {
		tCap = dynamic / k.dp
	}
	tc := math.Max(k.tf, math.Max(tMem, tCap))
	if tu <= 0 {
		return 1
	}
	return tc / tu
}

// MetricAt is Params.MetricAt on a raw ratio.
func (k *Kernel) MetricAt(m Metric, iv float64) float64 {
	switch m {
	case MetricFlopRate:
		return k.FlopRateAt(iv)
	case MetricFlopsPerJoule:
		return k.FlopsPerJouleAt(iv)
	case MetricAvgPower:
		return k.AvgPowerAt(iv)
	default:
		return math.NaN()
	}
}

// Point is one fully evaluated sweep sample: everything the roofline
// endpoints report per grid point, as raw float64s. Throttle is the
// raw throttle factor; consumers that need JSON-safe values must map
// non-finite entries themselves (the stream encoder omits them).
type Point struct {
	Intensity           float64
	Regime              Regime
	FlopsPerSec         float64
	UncappedFlopsPerSec float64
	FlopsPerJoule       float64
	AvgPowerW           float64
	Throttle            float64
}

// PointAt evaluates every per-point metric at one intensity ratio. It
// performs no allocations.
func (k *Kernel) PointAt(iv float64) Point {
	return Point{
		Intensity:           iv,
		Regime:              k.RegimeAt(iv),
		FlopsPerSec:         k.FlopRateAt(iv),
		UncappedFlopsPerSec: k.FlopRateAtUncapped(iv),
		FlopsPerJoule:       k.FlopsPerJouleAt(iv),
		AvgPowerW:           k.AvgPowerAt(iv),
		Throttle:            k.ThrottleFactor(iv),
	}
}

// AppendLogSpace appends the evaluated points with indices [start, end)
// of an n-point log-spaced grid over [exp(l0), exp(l1)] — the same grid
// formula LogSpace materializes, evaluated on the fly so streaming
// callers never hold the full grid. dst is caller-owned: pre-size its
// capacity to end-start and the call performs zero allocations.
func (k *Kernel) AppendLogSpace(dst []Point, l0, l1 float64, start, end, n int) []Point {
	for idx := start; idx < end; idx++ {
		frac := float64(idx) / float64(n-1)
		iv := math.Exp(l0 + frac*(l1-l0))
		dst = append(dst, k.PointAt(iv))
	}
	return dst
}
