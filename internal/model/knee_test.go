package model

import (
	"math"
	"testing"
	"testing/quick"

	"archline/internal/units"
)

func TestRequiredIntensityForRate(t *testing.T) {
	p := titanParams()
	// At frac=1 the knee is B_tau^+ (the cap interval's upper edge on a
	// capped machine): above it the rate is peak, below it isn't.
	i, err := p.RequiredIntensityForRate(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(i), float64(p.TimeBalancePlus()), 1e-6, "full-rate knee at B_tau^+")
	// Half rate is reached at a lower intensity.
	half, err := p.RequiredIntensityForRate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half >= i {
		t.Errorf("half-rate knee %v should be below full-rate knee %v", half, i)
	}
	// And the rate there is indeed half the peak.
	peak := float64(p.FlopRateAt(units.Intensity(math.Inf(1))))
	approx(t, float64(p.FlopRateAt(half)), 0.5*peak, 1e-6, "rate at the half knee")

	for _, frac := range []float64{0, -1, 1.5} {
		if _, err := p.RequiredIntensityForRate(frac); err == nil {
			t.Errorf("frac %v should error", frac)
		}
	}
	var bad Params
	if _, err := bad.RequiredIntensityForRate(0.5); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestRequiredIntensityForEfficiency(t *testing.T) {
	p := titanParams()
	// 80% of peak flop/J on the Titan needs a solidly compute-bound
	// intensity; 20% is reachable while bandwidth-bound.
	hi, err := p.RequiredIntensityForEfficiency(0.8)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := p.RequiredIntensityForEfficiency(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("knee ordering: 20%% at %v, 80%% at %v", lo, hi)
	}
	eff := float64(p.FlopsPerJouleAt(hi))
	approx(t, eff, 0.8*float64(p.PeakFlopsPerJoule()), 1e-6, "efficiency at the knee")
	// The paper's fig. 1 reading in knee form: the Arndale GPU reaches
	// half its peak efficiency at a much lower intensity than the Titan
	// reaches half of its (the mobile part is "easier to feed").
	mali := arndaleGPUParams()
	kneeT, _ := p.RequiredIntensityForEfficiency(0.5)
	kneeM, _ := mali.RequiredIntensityForEfficiency(0.5)
	if kneeM >= kneeT {
		t.Errorf("Arndale 50%% knee %v should be below Titan's %v", kneeM, kneeT)
	}

	if _, err := p.RequiredIntensityForEfficiency(0); err == nil {
		t.Error("frac 0 should error")
	}
	var bad Params
	if _, err := bad.RequiredIntensityForEfficiency(0.5); err == nil {
		t.Error("invalid machine should error")
	}
}

// Property: the knee respects its contract — rate below the knee is
// under target, at/above the knee meets it.
func TestQuickKneeContract(t *testing.T) {
	f := func(a, b, c, d, fr float64) bool {
		p := randomParams(a, b, c, d)
		frac := 0.05 + 0.9*math.Abs(finMod(fr, 1))
		knee, err := p.RequiredIntensityForRate(frac)
		if err != nil {
			return true // degenerate machines may reject
		}
		peak := float64(p.FlopRateAt(units.Intensity(math.Inf(1))))
		target := frac * peak
		atKnee := float64(p.FlopRateAt(knee))
		below := float64(p.FlopRateAt(knee * 0.9))
		return atKnee >= target*(1-1e-6) && below <= target*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
