// Package model implements the paper's first-principles model of
// algorithmic time, energy, and power (Choi, Dukhan, Liu, Vuduc; IPDPS
// 2014), equations (1)-(7).
//
// The abstract machine is a processor attached to a fast memory of finite
// capacity and an infinite slow memory. An abstract algorithm executes W
// flops and moves Q bytes between slow and fast memory. The machine is
// described by four fundamental throughput costs — time per flop
// (tau_flop), time per byte (tau_mem), energy per flop (eps_flop), energy
// per byte (eps_mem) — plus a constant power pi_1 drawn regardless of
// activity and, new in this paper, a usable-power cap DeltaPi limiting the
// additional power available to execute operations.
//
// Two model variants are provided. The uncapped model is the authors'
// prior IPDPS 2013 "energy roofline": T = max(W tau_flop, Q tau_mem). The
// capped model adds the third term of eq. (3): when the power needed to
// run flops and memory at full rate exceeds DeltaPi, all operations
// throttle so that dynamic power stays at the cap.
package model

import (
	"errors"
	"fmt"
	"math"

	"archline/internal/units"
)

// Params are the fundamental machine parameters of section III.
type Params struct {
	TauFlop units.TimePerFlop   // time per flop at peak throughput (s/flop)
	TauMem  units.TimePerByte   // time per byte at peak bandwidth (s/B)
	EpsFlop units.EnergyPerFlop // energy per flop (J/flop)
	EpsMem  units.EnergyPerByte // energy per byte (J/B)
	Pi1     units.Power         // constant power, drawn regardless of load (W)
	DeltaPi units.Power         // usable power above Pi1 for operations (W)
}

// Validate reports whether the parameters describe a physically sensible
// machine: strictly positive throughput costs, non-negative energies and
// powers, and no NaNs.
func (p Params) Validate() error {
	check := func(name string, v float64, strictlyPositive bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: %s is not finite (%v)", name, v)
		}
		if strictlyPositive && v <= 0 {
			return fmt.Errorf("model: %s must be > 0, got %v", name, v)
		}
		if !strictlyPositive && v < 0 {
			return fmt.Errorf("model: %s must be >= 0, got %v", name, v)
		}
		return nil
	}
	if err := check("tau_flop", float64(p.TauFlop), true); err != nil {
		return err
	}
	if err := check("tau_mem", float64(p.TauMem), true); err != nil {
		return err
	}
	if err := check("eps_flop", float64(p.EpsFlop), false); err != nil {
		return err
	}
	if err := check("eps_mem", float64(p.EpsMem), false); err != nil {
		return err
	}
	if err := check("pi_1", p.Pi1.Watts(), false); err != nil {
		return err
	}
	return check("delta_pi", p.DeltaPi.Watts(), false)
}

// PeakFlopRate is the machine's peak computational throughput 1/tau_flop.
func (p Params) PeakFlopRate() units.FlopRate { return p.TauFlop.Inverse() }

// PeakByteRate is the machine's peak memory bandwidth 1/tau_mem.
func (p Params) PeakByteRate() units.ByteRate { return p.TauMem.Inverse() }

// PiFlop is the power pi_flop = eps_flop/tau_flop drawn when executing
// flops at peak rate.
func (p Params) PiFlop() units.Power { return units.PowerPerFlop(p.EpsFlop, p.TauFlop) }

// PiMem is the power pi_mem = eps_mem/tau_mem drawn when streaming memory
// at peak bandwidth.
func (p Params) PiMem() units.Power { return units.PowerPerByte(p.EpsMem, p.TauMem) }

// TimeBalance is B_tau = tau_mem/tau_flop, the machine's intrinsic
// flop:Byte ratio: the intensity at which flop time equals memory time.
func (p Params) TimeBalance() units.Intensity {
	return units.Intensity(float64(p.TauMem) / float64(p.TauFlop))
}

// EnergyBalance is B_eps = eps_mem/eps_flop, the energy analogue of
// TimeBalance.
func (p Params) EnergyBalance() units.Intensity {
	if p.EpsFlop == 0 {
		return units.Intensity(math.Inf(1))
	}
	return units.Intensity(float64(p.EpsMem) / float64(p.EpsFlop))
}

// Powerful reports whether the cap never binds: DeltaPi >= pi_flop +
// pi_mem, i.e. there is enough usable power to run flops and memory at
// their peak rates simultaneously.
func (p Params) Powerful() bool {
	return p.DeltaPi.Watts() >= p.PiFlop().Watts()+p.PiMem().Watts()
}

// TimeBalancePlus is B_tau^+ of eq. (5): the upper edge of the cap-bound
// intensity interval. When DeltaPi <= pi_flop even a pure-flop workload is
// capped and the compute-bound regime never applies, so the result is
// +Inf.
func (p Params) TimeBalancePlus() units.Intensity {
	bt := p.TimeBalance().Ratio()
	headroom := p.DeltaPi.Watts() - p.PiFlop().Watts()
	if headroom <= 0 {
		return units.Intensity(math.Inf(1))
	}
	return units.Intensity(bt * math.Max(1, p.PiMem().Watts()/headroom))
}

// TimeBalanceMinus is B_tau^- of eq. (6): the lower edge of the cap-bound
// intensity interval, clamped at zero (when DeltaPi <= pi_mem even a
// pure-streaming workload is capped and the memory-bound regime never
// applies).
func (p Params) TimeBalanceMinus() units.Intensity {
	bt := p.TimeBalance().Ratio()
	headroom := p.DeltaPi.Watts() - p.PiMem().Watts()
	if headroom <= 0 {
		return 0
	}
	pf := p.PiFlop().Watts()
	if pf == 0 {
		return units.Intensity(bt)
	}
	return units.Intensity(bt * math.Min(1, headroom/pf))
}

// Time is the capped best-case execution time of eq. (3):
//
//	T(W,Q) = max( W tau_flop, Q tau_mem, (W eps_flop + Q eps_mem)/DeltaPi )
//
// assuming maximal overlap of flops and memory movement, throttled when
// the dynamic power would exceed DeltaPi. A zero DeltaPi with nonzero
// dynamic energy yields +Inf: the machine has no power to run anything.
func (p Params) Time(w units.Flops, q units.Bytes) units.Time {
	tFlop := w.Count() * float64(p.TauFlop)
	tMem := q.Count() * float64(p.TauMem)
	dynamic := w.Count()*float64(p.EpsFlop) + q.Count()*float64(p.EpsMem)
	tCap := 0.0
	if dynamic > 0 {
		tCap = dynamic / p.DeltaPi.Watts() // +Inf when DeltaPi == 0
	}
	return units.Time(math.Max(tFlop, math.Max(tMem, tCap)))
}

// TimeUncapped is the prior model's execution time, max(W tau_flop,
// Q tau_mem), with no power cap.
func (p Params) TimeUncapped(w units.Flops, q units.Bytes) units.Time {
	return units.Time(math.Max(w.Count()*float64(p.TauFlop), q.Count()*float64(p.TauMem)))
}

// Energy is the total energy of eq. (1): E = W eps_flop + Q eps_mem +
// pi_1 T(W,Q), with T the capped time.
func (p Params) Energy(w units.Flops, q units.Bytes) units.Energy {
	return p.energyWith(w, q, p.Time(w, q))
}

// EnergyUncapped is eq. (1) evaluated with the uncapped time model.
func (p Params) EnergyUncapped(w units.Flops, q units.Bytes) units.Energy {
	return p.energyWith(w, q, p.TimeUncapped(w, q))
}

func (p Params) energyWith(w units.Flops, q units.Bytes, t units.Time) units.Energy {
	return units.Energy(w.Count()*float64(p.EpsFlop) +
		q.Count()*float64(p.EpsMem) +
		p.Pi1.Watts()*t.Seconds())
}

// AvgPower is the average instantaneous power E/T for a concrete (W, Q)
// workload under the capped model.
func (p Params) AvgPower(w units.Flops, q units.Bytes) units.Power {
	return p.Energy(w, q).Over(p.Time(w, q))
}

// AvgPowerAt evaluates the closed-form eq. (7) at intensity I. It equals
// AvgPower(W, W/I) for any W > 0.
func (p Params) AvgPowerAt(i units.Intensity) units.Power {
	if i <= 0 {
		return units.Power(math.NaN())
	}
	pi1 := p.Pi1.Watts()
	pf := p.PiFlop().Watts()
	pm := p.PiMem().Watts()
	bt := p.TimeBalance().Ratio()
	iv := i.Ratio()
	switch {
	case iv >= p.TimeBalancePlus().Ratio():
		return units.Power(pi1 + pf + pm*bt/iv)
	case iv <= p.TimeBalanceMinus().Ratio():
		return units.Power(pi1 + pf*iv/bt + pm)
	default:
		return units.Power(pi1 + p.DeltaPi.Watts())
	}
}

// PeakAvgPower is the maximum of eq. (7) over intensity: pi_1 + pi_flop +
// pi_mem when the cap never binds (attained at I = B_tau), else pi_1 +
// DeltaPi.
func (p Params) PeakAvgPower() units.Power {
	dyn := math.Min(p.DeltaPi.Watts(), p.PiFlop().Watts()+p.PiMem().Watts())
	return units.Power(p.Pi1.Watts() + dyn)
}

// FlopRateAt is the achieved computational throughput W/T at intensity I,
// the quantity plotted in fig. 1 (left panel) and fig. 7a. From eq. (4):
//
//	T/W = tau_flop * max(1, B_tau/I, (pi_flop/DeltaPi)(1 + B_eps/I))
func (p Params) FlopRateAt(i units.Intensity) units.FlopRate {
	if i <= 0 {
		return 0
	}
	t := p.timePerFlopAt(i)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return units.FlopRate(1 / t)
}

// FlopRateAtUncapped is the uncapped model's throughput at intensity I.
func (p Params) FlopRateAtUncapped(i units.Intensity) units.FlopRate {
	if i <= 0 {
		return 0
	}
	t := float64(p.TauFlop) * math.Max(1, p.TimeBalance().Ratio()/i.Ratio())
	return units.FlopRate(1 / t)
}

// timePerFlopAt is T/W from eq. (4) (seconds per flop at intensity I).
func (p Params) timePerFlopAt(i units.Intensity) float64 {
	tf := float64(p.TauFlop)
	bt := p.TimeBalance().Ratio()
	iv := i.Ratio()
	capTerm := 0.0
	if dyn := float64(p.EpsFlop) + float64(p.EpsMem)/iv; dyn > 0 {
		capTerm = dyn / p.DeltaPi.Watts() / tf // (pi_flop/DeltaPi)(1+B_eps/I) when eps_flop>0
	}
	return tf * math.Max(1, math.Max(bt/iv, capTerm))
}

// EnergyPerFlopAt is E/W at intensity I from eq. (2):
//
//	E/W = eps_flop (1 + B_eps/I) + pi_1 T/W
func (p Params) EnergyPerFlopAt(i units.Intensity) units.EnergyPerFlop {
	if i <= 0 {
		return units.EnergyPerFlop(math.Inf(1))
	}
	dyn := float64(p.EpsFlop) + float64(p.EpsMem)/i.Ratio()
	return units.EnergyPerFlop(dyn + p.Pi1.Watts()*p.timePerFlopAt(i))
}

// FlopsPerJouleAt is the energy efficiency W/E at intensity I, the
// quantity plotted in fig. 1 (middle panel) and fig. 7b.
func (p Params) FlopsPerJouleAt(i units.Intensity) units.FlopsPerJoule {
	e := float64(p.EnergyPerFlopAt(i))
	if e <= 0 || math.IsInf(e, 1) {
		return 0
	}
	return units.FlopsPerJoule(1 / e)
}

// PeakFlopsPerJoule is the asymptotic (I -> inf) energy efficiency:
// 1/(eps_flop + pi_1 * max(tau_flop, eps_flop/DeltaPi)). This is the
// "16 Gflop/J" figure the paper quotes per platform in fig. 5's panel
// headers.
func (p Params) PeakFlopsPerJoule() units.FlopsPerJoule {
	tpf := float64(p.TauFlop)
	if p.DeltaPi.Watts() > 0 {
		tpf = math.Max(tpf, float64(p.EpsFlop)/p.DeltaPi.Watts())
	} else if p.EpsFlop > 0 {
		return 0
	}
	e := float64(p.EpsFlop) + p.Pi1.Watts()*tpf
	if e <= 0 {
		return units.FlopsPerJoule(math.Inf(1))
	}
	return units.FlopsPerJoule(1 / e)
}

// PeakBytesPerJoule is the asymptotic (I -> 0) memory energy efficiency:
// 1/(eps_mem + pi_1 * max(tau_mem, eps_mem/DeltaPi)). This is the
// "1.3 GB/J" figure of fig. 5's panel headers, and the quantity behind
// the section V-B streaming-energy inversion example.
func (p Params) PeakBytesPerJoule() units.BytesPerJoule {
	tpb := float64(p.TauMem)
	if p.DeltaPi.Watts() > 0 {
		tpb = math.Max(tpb, float64(p.EpsMem)/p.DeltaPi.Watts())
	} else if p.EpsMem > 0 {
		return 0
	}
	e := float64(p.EpsMem) + p.Pi1.Watts()*tpb
	if e <= 0 {
		return units.BytesPerJoule(math.Inf(1))
	}
	return units.BytesPerJoule(1 / e)
}

// StreamEnergyPerByte is the total cost of streaming one byte including
// the constant-power charge: eps_mem + pi_1 * max(tau_mem,
// eps_mem/DeltaPi). Section V-B uses this to show the Arndale GPU
// (671 pJ/B) beating the Xeon Phi (1.13 nJ/B) despite the Phi's lower
// eps_mem.
func (p Params) StreamEnergyPerByte() units.EnergyPerByte {
	tpb := float64(p.TauMem)
	if p.DeltaPi.Watts() > 0 {
		tpb = math.Max(tpb, float64(p.EpsMem)/p.DeltaPi.Watts())
	}
	return units.EnergyPerByte(float64(p.EpsMem) + p.Pi1.Watts()*tpb)
}

// WithCap returns a copy of p with the usable power cap scaled by frac,
// the operation behind the paper's DeltaPi/k throttling scenarios
// (figs. 6-7). frac must be non-negative.
func (p Params) WithCap(frac float64) (Params, error) {
	if frac < 0 || math.IsNaN(frac) {
		return Params{}, errors.New("model: cap fraction must be >= 0")
	}
	q := p
	q.DeltaPi = units.Power(p.DeltaPi.Watts() * frac)
	return q, nil
}

// Scale returns the parameters of a system built from k identical copies
// of this machine running the same workload in perfect weak scaling:
// aggregate throughput and bandwidth scale by k (tau/k), per-operation
// energies are unchanged, and both constant power and usable power scale
// by k. This is the paper's "47 x Arndale GPU" construction. k must be
// positive.
func (p Params) Scale(k float64) (Params, error) {
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return Params{}, errors.New("model: scale factor must be positive and finite")
	}
	return Params{
		TauFlop: units.TimePerFlop(float64(p.TauFlop) / k),
		TauMem:  units.TimePerByte(float64(p.TauMem) / k),
		EpsFlop: p.EpsFlop,
		EpsMem:  p.EpsMem,
		Pi1:     units.Power(p.Pi1.Watts() * k),
		DeltaPi: units.Power(p.DeltaPi.Watts() * k),
	}, nil
}

// Prediction bundles the model outputs for one (W, Q) workload.
type Prediction struct {
	W        units.Flops
	Q        units.Bytes
	I        units.Intensity
	Time     units.Time
	Energy   units.Energy
	AvgPower units.Power
	Regime   Regime
}

// Predict evaluates the capped model for a concrete workload.
func (p Params) Predict(w units.Flops, q units.Bytes) Prediction {
	t := p.Time(w, q)
	e := p.energyWith(w, q, t)
	i := w.Intensity(q)
	return Prediction{
		W: w, Q: q, I: i,
		Time:     t,
		Energy:   e,
		AvgPower: e.Over(t),
		Regime:   p.RegimeAt(i),
	}
}
