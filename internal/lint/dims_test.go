package lint

import "testing"

// TestDimAlgebra exercises the vector algebra against the identities
// the paper's bookkeeping relies on: eps/tau is a power, pi*T is an
// energy, W/Q is an intensity.
func TestDimAlgebra(t *testing.T) {
	eps := unitDims["EnergyPerFlop"]
	tau := unitDims["TimePerFlop"]
	if got := eps.Div(tau); got != unitDims["Power"] {
		t.Errorf("eps/tau = %v, want Power", got)
	}
	if got := unitDims["Power"].Mul(unitDims["Time"]); got != unitDims["Energy"] {
		t.Errorf("pi*T = %v, want Energy", got)
	}
	if got := unitDims["Flops"].Div(unitDims["Bytes"]); got != unitDims["Intensity"] {
		t.Errorf("W/Q = %v, want Intensity", got)
	}
	if got := unitDims["FlopRate"].Inv(); got != unitDims["TimePerFlop"] {
		t.Errorf("1/FlopRate = %v, want TimePerFlop", got)
	}
	sq := unitDims["Time"].Mul(unitDims["Time"])
	if half, ok := sq.Halve(); !ok || half != unitDims["Time"] {
		t.Errorf("sqrt(s^2) = %v (ok=%v), want Time", half, ok)
	}
	if _, ok := unitDims["Time"].Halve(); ok {
		t.Error("sqrt(s) should have no integer dimension")
	}
}

// TestDimString checks the conventional rendering used in diagnostics.
func TestDimString(t *testing.T) {
	cases := []struct {
		d    Dim
		want string
	}{
		{Dim{}, "1"},
		{unitDims["Time"], "s"},
		{unitDims["Power"], "J/s"},
		{unitDims["EnergyPerFlop"], "J/flop"},
		{unitDims["Intensity"], "flop/B"},
		{unitDims["Time"].Mul(unitDims["Time"]), "s^2"},
		{unitDims["Time"].Inv(), "1/s"},
		{unitDims["FlopRate"].Div(unitDims["Bytes"]), "flop/(B·s)"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestDimTablesAgree checks that every units type with a dimension also
// names an accessor, and that every accessor names a known type, so the
// analyzer's fix suggestions never dangle.
func TestDimTablesAgree(t *testing.T) {
	for name := range unitDims {
		if _, ok := unitAccessors[name]; !ok {
			t.Errorf("units.%s has a dimension but no accessor", name)
		}
	}
	for name := range unitAccessors {
		if _, ok := unitDims[name]; !ok {
			t.Errorf("accessor table names unknown units type %s", name)
		}
	}
}

// TestParseDimExpr exercises the //archlint:dim grammar.
func TestParseDimExpr(t *testing.T) {
	cases := []struct {
		in   string
		want Dim
		any  bool
		ok   bool
	}{
		{"Power", unitDims["Power"], false, true},
		{"energy/time", unitDims["Power"], false, true},
		{"Energy/Time", unitDims["Power"], false, true},
		{"Energy*Time", Dim{Energy: 1, Time: 1}, false, true},
		{"Time^2", Dim{Time: 2}, false, true},
		{"flop/byte", unitDims["Intensity"], false, true},
		{"Flops/Bytes", unitDims["Intensity"], false, true},
		{"time^-1", Dim{Time: -1}, false, true},
		{"EnergyPerFlop", unitDims["EnergyPerFlop"], false, true},
		{"dimensionless", Dim{}, false, true},
		{"1", Dim{}, false, true},
		{"any", Dim{}, true, true},
		{"", Dim{}, false, false},
		{"Watts", Dim{}, false, false},
		{"Energy/", Dim{}, false, false},
		{"Energy/Time/nosuch", Dim{}, false, false},
		{"Time^x", Dim{}, false, false},
	}
	for _, c := range cases {
		d, anyDim, ok := ParseDimExpr(c.in)
		if ok != c.ok || anyDim != c.any || (ok && !anyDim && d != c.want) {
			t.Errorf("ParseDimExpr(%q) = (%v, any=%v, ok=%v), want (%v, any=%v, ok=%v)",
				c.in, d, anyDim, ok, c.want, c.any, c.ok)
		}
	}
}
