package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDimCheckInSuite pins dimcheck into the default suite: the repo
// gate (TestRepoIsClean), `make check`, and scripts/check.sh all run
// All(), so membership here is what keeps the tree dimensionally clean.
func TestDimCheckInSuite(t *testing.T) {
	if _, ok := ByName("dimcheck"); !ok {
		t.Fatal("dimcheck is not registered")
	}
	found := false
	for _, a := range All() {
		if a == DimCheck {
			found = true
		}
	}
	if !found {
		t.Error("dimcheck is not in the default analyzer suite")
	}
}

// TestDimFixRoundTrip applies dimcheck's -fix to a scratch fixture of
// mechanical strip escapes and verifies the loop closes: zero findings
// remain, and a second -fix run is a byte-stable no-op.
func TestDimFixRoundTrip(t *testing.T) {
	dir := writeTempFixture(t, "dimfix", `package dimfix

import "archline/internal/units"

type out struct {
	Gflops float64 `+"`"+`json:"gflops"`+"`"+`
	GBs    float64 `+"`"+`json:"gbs"`+"`"+`
	PJ     float64 `+"`"+`json:"pj"`+"`"+`
}

func encode(r units.FlopRate, b units.ByteRate, e units.EnergyPerFlop) out {
	return out{
		Gflops: float64(r) / 1e9,
		GBs:    float64(b) / 1e9,
		PJ:     float64(e) * 1e12,
	}
}
`)
	cfg := Config{Dir: dir, Patterns: []string{"."}, Enable: []string{"dimcheck"}}

	fixCfg := cfg
	fixCfg.Fix = true
	res, err := Run(fixCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsuppressed()) != 3 {
		t.Fatalf("want 3 strip findings before fix, got %v", res.Diags)
	}
	if len(res.FixedFiles) != 1 {
		t.Fatalf("want 1 fixed file, got %v", res.FixedFiles)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".FlopsPerSec()", ".BytesPerSec()", ".JoulesPerFlop()"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %s", want)
		}
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatalf("fixed fixture no longer loads: %v", err)
	}
	if diags := res2.Unsuppressed(); len(diags) != 0 {
		t.Fatalf("findings survive -fix: %v", diags)
	}

	// A second fix pass must change nothing: the rewrite is idempotent.
	res3, err := Run(fixCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.FixedFiles) != 0 {
		t.Errorf("second -fix run rewrote files: %v", res3.FixedFiles)
	}
	again, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Error("second -fix run was not byte-stable")
	}
}

// TestDimSuppression checks that a reasoned //archlint:ignore dimcheck
// suppresses a dimensional finding the usual way.
func TestDimSuppression(t *testing.T) {
	dir := writeTempFixture(t, "dimsuppress", `package dimsuppress

import "archline/internal/units"

func mix(e units.Energy, t units.Time) float64 {
	//archlint:ignore dimcheck deliberate apples-to-oranges for a sentinel
	return e.Joules() + t.Seconds()
}
`)
	res, err := Run(Config{Dir: dir, Patterns: []string{"."}})
	if err != nil {
		t.Fatal(err)
	}
	if un := res.Unsuppressed(); len(un) != 0 {
		t.Fatalf("want the finding suppressed, got %v", un)
	}
	if len(res.Diags) != 1 || !res.Diags[0].Suppressed {
		t.Fatalf("want exactly 1 suppressed dimcheck finding, got %v", res.Diags)
	}
}

// TestStaleSuppression checks that an //archlint:ignore which no longer
// suppresses anything is itself reported — and stays dormant, not
// stale, when its analyzer is disabled.
func TestStaleSuppression(t *testing.T) {
	src := `package stale

func half(t float64) float64 {
	//archlint:ignore floatcmp the comparison this guarded was refactored away
	return t / 2
}
`
	dir := writeTempFixture(t, "stale", src)
	res, err := Run(Config{Dir: dir, Patterns: []string{"."}})
	if err != nil {
		t.Fatal(err)
	}
	diags := res.Unsuppressed()
	if len(diags) != 1 || diags[0].Analyzer != "archlint" || !strings.Contains(diags[0].Message, "stale") {
		t.Fatalf("want exactly 1 stale-directive diagnostic, got %v", diags)
	}

	res2, err := Run(Config{Dir: dir, Patterns: []string{"."}, Disable: []string{"floatcmp"}})
	if err != nil {
		t.Fatal(err)
	}
	if diags := res2.Unsuppressed(); len(diags) != 0 {
		t.Fatalf("directive for a disabled analyzer must be dormant, got %v", diags)
	}
}
