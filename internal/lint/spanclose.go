package lint

import (
	"go/ast"
	"go/types"
)

// obsPkgPath is the import path of the tracing package SpanClose guards.
const obsPkgPath = "archline/internal/obs"

// SpanClose enforces the span lifecycle idiom around obs.Start: every
// started span must be bound to a variable and closed with a deferred
// End in the same block —
//
//	ctx, span := obs.Start(ctx, "layer.operation", ...)
//	defer span.End()
//
// A span that is never ended never exports (the trace silently loses a
// subtree), and an End that is not deferred misses every early-return
// and panic path, which is exactly when a trace is worth reading.
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "flags obs.Start spans that are dropped, discarded, or not closed with defer span.End()",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkSpanBlock(pass, block)
			return true
		})
	}
}

// checkSpanBlock inspects one block's direct statements for obs.Start
// calls and verifies each resulting span is deferred-closed later in
// the same block. Nested blocks are handled by their own visit.
func checkSpanBlock(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isObsStart(pass, call) {
				pass.Reportf(s.Pos(), "obs.Start result dropped; bind the span and defer span.End(), or the span never exports")
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				continue
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isObsStart(pass, call) || len(s.Lhs) != 2 {
				continue
			}
			id, ok := s.Lhs[1].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(id.Pos(), "span from obs.Start discarded; a span that is never ended never exports")
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if !hasDeferredEnd(pass, block.List[i+1:], obj) {
				pass.Reportf(id.Pos(), "started span %s has no defer %s.End() in this block; a non-deferred End misses early-return and panic paths", id.Name, id.Name)
			}
		}
	}
}

// isObsStart reports whether call is <obs-package>.Start(...), resolving
// the package through the type info so import aliases are honored.
func isObsStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == obsPkgPath
}

// hasDeferredEnd reports whether one of stmts is `defer <span>.End()`
// on the given span object.
func hasDeferredEnd(pass *Pass, stmts []ast.Stmt, span types.Object) bool {
	for _, stmt := range stmts {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		if pass.Info.Uses[id] == span {
			return true
		}
	}
	return false
}
