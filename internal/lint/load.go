package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("archline/internal/model").
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Src maps file path -> raw bytes.
	Src map[string][]byte
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-local imports resolve recursively
// from source, and everything else (the standard library) goes through
// go/importer's source importer. Each module-local package is checked
// exactly once per Loader — the importer and the analysis entry point
// share the same *types.Package, which keeps type identities consistent
// across packages.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string

	fset     *token.FileSet
	pkgs     map[string]*Package
	checking map[string]bool
	std      types.Importer
	stdMemo  map[string]*types.Package
}

// NewLoader locates the module root at or above dir and prepares a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     root,
		Module:   module,
		fset:     fset,
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
		std:      importer.ForCompiler(fset, "source", nil),
		stdMemo:  map[string]*types.Package{},
	}, nil
}

// findModuleRoot walks up from dir looking for go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// local reports whether path lies inside the module.
func (l *Loader) local(path string) bool {
	return path == l.Module || strings.HasPrefix(path, l.Module+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Loaded returns the already-loaded package at the given import path,
// or nil. It never triggers a load: analyzers may only reach packages
// the current analysis target (transitively) imports, which the loader
// has necessarily already checked.
func (l *Loader) Loaded(path string) *Package {
	return l.pkgs[path]
}

// Import implements types.Importer: module-local paths load from the
// module tree; everything else falls through to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.local(path) {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, ok := l.stdMemo[path]; ok {
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.stdMemo[path] = pkg
	return pkg, nil
}

// loadPath parses and type-checks the module-local package at path,
// memoised.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirFor(path)
	files, src, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Src:   src,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir (sorted by name for
// deterministic diagnostics) and returns the ASTs plus raw sources.
func (l *Loader) parseDir(dir string) ([]*ast.File, map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	src := map[string][]byte{}
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(l.fset, path, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		files = append(files, f)
		src[path] = data
	}
	return files, src, nil
}

// Load parses and fully type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(l.importPath(abs))
}

// importPath maps an absolute directory to its import path within the
// module. Directories outside the module are rejected by loadPath's
// dir mapping, so analysis is always module-rooted.
func (l *Loader) importPath(abs string) string {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// Expand resolves package patterns relative to dir into package
// directories. Supported forms: "./...", "dir/...", plain directories.
// Directories named testdata or vendor, hidden directories, and
// directories without non-test Go files are skipped during ... walks.
func Expand(dir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = dir
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(dir, base)
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		if !hasGoFiles(p) {
			return nil, fmt.Errorf("lint: no Go files in %s", p)
		}
		add(p)
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
