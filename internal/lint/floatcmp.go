package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in non-test
// code. Exact equality on floats is almost always a latent bug in model
// code; comparisons belong to an approximate-equality helper.
//
// Two idioms stay exempt because they are exact by construction:
//   - comparison against a literal/constant zero (a sentinel check —
//     0 is exactly representable and is how "unset" fields read), and
//   - x != x, the NaN test.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands in non-test code",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[e.X]
			yt, yok := pass.Info.Types[e.Y]
			if !xok || !yok {
				return true
			}
			if !underlyingFloat(xt.Type) && !underlyingFloat(yt.Type) {
				return true
			}
			if isZeroConst(xt) || isZeroConst(yt) {
				return true
			}
			if types.ExprString(e.X) == types.ExprString(e.Y) {
				// x != x is the NaN idiom; x == x its complement.
				return true
			}
			pass.Reportf(e.Pos(), "%s on floating-point operands; use an approximate comparison", e.Op)
			return true
		})
	}
}

// isZeroConst reports whether the expression is a numeric constant
// equal to zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
