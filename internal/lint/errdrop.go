package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags expression statements that call a function returning an
// error and discard it. The usual offenders on output paths are
// fmt.Fprintf, (*bufio.Writer).Flush, and (*json.Encoder).Encode.
//
// Exempt by design:
//   - fmt.Print/Printf/Println — stdout convenience writes, the
//     conventional errcheck exclusion;
//   - fmt.Fprint* directly to os.Stderr — process diagnostics with no
//     recovery path (there is nowhere left to report the failure);
//   - calls writing into *strings.Builder or *bytes.Buffer (their Write
//     methods are documented never to fail), whether as the method
//     receiver or as the writer argument of an fmt.Fprint* call;
//   - explicit `_ =` assignments, which are a visible acknowledgement.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error return values",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass.Info, call) {
				return true
			}
			if exemptErrDrop(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "discarded error from %s", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.IsType() {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptErrDrop applies the documented exemptions.
func exemptErrDrop(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 &&
				(isInfallibleWriter(info, call.Args[0]) || isStderr(info, call.Args[0])) {
				return true
			}
		}
		return false
	}
	// Methods on infallible writers (strings.Builder, bytes.Buffer).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isInfallibleWriter(info, sel.X) {
			return true
		}
	}
	return false
}

// isInfallibleWriter reports whether e is (a pointer to) a
// strings.Builder or bytes.Buffer.
func isInfallibleWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStderr reports whether e is the os.Stderr variable.
func isStderr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" && v.Name() == "Stderr"
}

// callName renders a short name for the called expression.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
