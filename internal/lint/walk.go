package lint

import (
	"go/ast"
	"go/types"
)

// buildParents maps every node in f to its parent, for the analyzers
// that need to look outward from a match (e.g. "is this conversion an
// argument of a fmt call?").
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for conversions, calls of function-typed values, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleePkgPath returns the package path of the called function, or ""
// when the callee is not a named function (conversion, builtin, or a
// function-typed value).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isConversion reports whether call is a type conversion, returning the
// target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// isConstExpr reports whether the expression is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// underlyingFloat reports whether t's underlying type is a
// floating-point kind.
func underlyingFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
