package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DimCheck is the dimensional-consistency analyzer for fitted-constant
// arithmetic. The compiler's unit types stop protecting a value the
// moment it becomes a raw float64 — which the fitting and serving code
// must do constantly (optimizers, JSON envelopes, stats helpers).
// DimCheck re-derives a dimension vector (dims.go) for those raw
// floats by tracking where they came from — accessor calls, unit-type
// conversions, local assignments, and the return values of
// module-local float64 functions — and then enforces three rules:
//
//   - addition, subtraction, ordered comparison, and math.Max/Min must
//     combine like dimensions (ε + π is meaningless even though both
//     sides are float64);
//   - a product or quotient whose dimension no units type names must
//     not escape raw into a call, struct field, or map — wrap it, or
//     declare the sink with //archlint:dim;
//   - a derived-unit value (units.FlopRate, units.EnergyPerFlop, …)
//     must cross struct-field, map, and interface boundaries through
//     its named accessor, not a bare float64(...) conversion (the
//     escape hatch unitsafety leaves open for non-guarded types).
//
// Conversions to a units type are also checked against the derived
// dimension of the operand, so units.Power(e.Joules()) is a finding.
//
// Sinks that intentionally accept dimensioned floats are declared with
// a directive on the function's doc comment, the struct field, or the
// struct type itself:
//
//	//archlint:dim <unit>
//
// where <unit> is a units type name ("Power"), a dimension expression
// ("Energy/Time", "Time^2", "flop/byte"), "dimensionless"/"1", or
// "any". An annotated field also gives the analyzer the field's
// dimension: reads propagate it and stores of a conflicting derivable
// dimension are flagged. A directive on a struct type's doc comment is
// the default for every float64 field of that struct — one annotation
// covers a whole coefficient table — and a field-level directive
// overrides it for that field.
//
// Known limits, by design (SSA-free): dataflow is path-insensitive (a
// conditional reassignment simply overwrites the tracked dimension),
// float64 function parameters are dimension-unknown (summaries are
// context-insensitive), and unknown dimensions are never flagged —
// the analyzer only speaks when both sides of a combination derive.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "derives dimensions through fitted-constant float64 arithmetic and flags inconsistent combinations, unnamed result dimensions, and unit-stripping escapes",
	Run:  runDimCheck,
}

// dimDirective is the declaration-comment prefix for dimension
// annotations ("//archlint:dim <unit>").
const dimDirective = "archlint:dim"

// calleePkgExempt lists packages whose calls are formatting or
// math-plumbing boundaries where raw floats are the point.
var calleePkgExempt = map[string]bool{
	"fmt":        true,
	"log":        true,
	"log/slog":   true,
	unitsPkgPath: true,
	"math":       true, // dimension-aware cases are handled explicitly
	"sort":       true,
	"strconv":    true,
}

// dimResult is a derived dimension: known reports whether derivation
// succeeded (a known zero vector means "provably dimensionless", which
// is different from unknown).
type dimResult struct {
	d     Dim
	known bool
}

func knownDim(d Dim) dimResult { return dimResult{d: d, known: true} }

var unknownDim = dimResult{}

// dimAnn is one parsed //archlint:dim annotation.
type dimAnn struct {
	d      Dim
	anyDim bool
}

// dimAnnotations holds one package's //archlint:dim declarations.
type dimAnnotations struct {
	funcs  map[*types.Func]dimAnn
	fields map[*types.Var]dimAnn
}

// dimFactsKey keys the analyzer's shared state in Pass.Facts.
type dimFactsKey struct{}

// dimFacts is the cross-package cache of one Run: function summaries,
// per-package FuncDecl indexes, and annotation tables survive from one
// analyzed package to the next, so the dataflow over fit → model →
// units is computed once.
type dimFacts struct {
	summaries  map[*types.Func]dimResult
	inProgress map[*types.Func]bool
	decls      map[string]map[*types.Func]*ast.FuncDecl
	anns       map[string]*dimAnnotations
}

func dimFactsOf(pass *Pass) *dimFacts {
	if pass.Facts == nil {
		pass.Facts = map[any]any{}
	}
	if f, ok := pass.Facts[dimFactsKey{}].(*dimFacts); ok {
		return f
	}
	f := &dimFacts{
		summaries:  map[*types.Func]dimResult{},
		inProgress: map[*types.Func]bool{},
		decls:      map[string]map[*types.Func]*ast.FuncDecl{},
		anns:       map[string]*dimAnnotations{},
	}
	pass.Facts[dimFactsKey{}] = f
	return f
}

// dimChecker derives and checks dimensions within one function at a
// time. pass is nil while silently summarizing a dependency package.
type dimChecker struct {
	pass  *Pass
	info  *types.Info
	facts *dimFacts
	dep   func(string) *Package
	// env tracks the derived dimension of float64 locals, in source
	// order (SSA-free: the latest assignment wins).
	env map[types.Object]dimResult
	// stripped tracks float64 locals initialized from a bare
	// float64(unitValue) conversion, for the escape check.
	stripped map[types.Object]string
}

func runDimCheck(pass *Pass) {
	if pass.Pkg.Path() == unitsPkgPath {
		return
	}
	facts := dimFactsOf(pass)
	// Build (and cache) this package's annotations with malformed-
	// directive reporting; dependency packages are scanned silently on
	// demand.
	facts.anns[pass.Pkg.Path()] = buildDimAnnotations(pass.Files, pass.Info, pass)
	c := &dimChecker{pass: pass, info: pass.Info, facts: facts, dep: pass.Dep}
	for _, f := range pass.Files {
		parents := buildParents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.env = map[types.Object]dimResult{}
			c.stripped = map[types.Object]string{}
			c.checkBody(fd.Body, parents)
		}
	}
}

// buildDimAnnotations scans //archlint:dim directives on function doc
// comments, struct types, and struct fields. A type-level directive is
// the default for the struct's float64 fields; a field-level directive
// overrides it. pass is non-nil only for the package currently under
// analysis, which reports malformed directives.
func buildDimAnnotations(files []*ast.File, info *types.Info, pass *Pass) *dimAnnotations {
	anns := &dimAnnotations{
		funcs:  map[*types.Func]dimAnn{},
		fields: map[*types.Var]dimAnn{},
	}
	parse := func(cg *ast.CommentGroup) (dimAnn, bool) {
		if cg == nil {
			return dimAnn{}, false
		}
		for _, cmt := range cg.List {
			text := strings.TrimPrefix(cmt.Text, "//")
			rest, ok := strings.CutPrefix(text, dimDirective)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			d, anyDim, ok := ParseDimExpr(rest)
			if !ok {
				if pass != nil {
					pass.Reportf(cmt.Pos(), "malformed //archlint:dim: %q is not a units type, dimension expression, \"dimensionless\", or \"any\"", strings.TrimSpace(rest))
				}
				return dimAnn{}, false
			}
			return dimAnn{d: d, anyDim: anyDim}, true
		}
		return dimAnn{}, false
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if ann, ok := parse(d.Doc); ok {
					if fn, _ := info.Defs[d.Name].(*types.Func); fn != nil {
						anns.funcs[fn] = ann
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					// A directive on the type itself defaults every
					// float64 field. In the common single-spec form
					// (`// doc\ntype T struct {…}`) go/ast hangs the doc
					// on the GenDecl, not the TypeSpec, so fall back.
					typeAnn, typeOK := parse(ts.Doc)
					if !typeOK && len(d.Specs) == 1 {
						typeAnn, typeOK = parse(d.Doc)
					}
					for _, field := range st.Fields.List {
						ann, ok := parse(field.Doc)
						if !ok {
							ann, ok = parse(field.Comment)
						}
						for _, name := range field.Names {
							v, _ := info.Defs[name].(*types.Var)
							if v == nil {
								continue
							}
							switch {
							case ok:
								anns.fields[v] = ann
							case typeOK && isFloat64(v.Type()):
								anns.fields[v] = typeAnn
							}
						}
					}
				}
			}
		}
	}
	return anns
}

// annotationsFor returns the (lazily built) annotations of the package
// at path.
func (c *dimChecker) annotationsFor(path string) *dimAnnotations {
	if a, ok := c.facts.anns[path]; ok {
		return a
	}
	var a *dimAnnotations
	if c.dep != nil {
		if p := c.dep(path); p != nil {
			a = buildDimAnnotations(p.Files, p.Info, nil)
		}
	}
	if a == nil {
		a = &dimAnnotations{funcs: map[*types.Func]dimAnn{}, fields: map[*types.Var]dimAnn{}}
	}
	c.facts.anns[path] = a
	return a
}

func (c *dimChecker) funcAnn(fn *types.Func) (dimAnn, bool) {
	if fn == nil || fn.Pkg() == nil {
		return dimAnn{}, false
	}
	ann, ok := c.annotationsFor(fn.Pkg().Path()).funcs[fn]
	return ann, ok
}

func (c *dimChecker) fieldAnn(v *types.Var) (dimAnn, bool) {
	if v == nil || v.Pkg() == nil {
		return dimAnn{}, false
	}
	ann, ok := c.annotationsFor(v.Pkg().Path()).fields[v]
	return ann, ok
}

// unitTypeName returns the units type name carrying a dimension when t
// is one of the named quantity types.
func unitTypeName(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return "", false
	}
	_, ok = unitDims[obj.Name()]
	return obj.Name(), ok
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// ---------------------------------------------------------------------
// Dimension derivation
// ---------------------------------------------------------------------

// dimOf derives the dimension of e, or unknown. It is side-effect
// free; all reporting happens in the check walk.
func (c *dimChecker) dimOf(e ast.Expr) dimResult {
	tv, ok := c.info.Types[e]
	if !ok || tv.Value != nil {
		// Untyped and typed constants are dimensionally polymorphic
		// (2*t scales a time; the 2 carries no dimension of its own).
		return unknownDim
	}
	if name, ok := unitTypeName(tv.Type); ok {
		return knownDim(unitDims[name])
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.dimOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return c.dimOf(x.X)
		}
	case *ast.Ident:
		if obj := c.info.ObjectOf(x); obj != nil {
			if r, ok := c.env[obj]; ok {
				return r
			}
		}
	case *ast.SelectorExpr:
		if v, ok := c.info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			if ann, ok := c.fieldAnn(v); ok && !ann.anyDim {
				return knownDim(ann.d)
			}
		}
	case *ast.CallExpr:
		return c.dimOfCall(x)
	case *ast.BinaryExpr:
		return c.dimOfBinary(x)
	}
	return unknownDim
}

// dimOfCall handles conversions, unit accessors, the dimension-aware
// math functions, and module-local function summaries.
func (c *dimChecker) dimOfCall(call *ast.CallExpr) dimResult {
	if target, ok := isConversion(c.info, call); ok {
		// Conversions to a units type were already resolved by the
		// static-type rule; a float conversion is dimensionally
		// transparent.
		if len(call.Args) == 1 && underlyingFloat(target) {
			return c.dimOf(call.Args[0])
		}
		return unknownDim
	}
	fn := calleeFunc(c.info, call)
	if fn == nil {
		return unknownDim
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		return c.dimOfMathCall(fn.Name(), call)
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 || !isFloat64(sig.Results().At(0).Type()) {
		return unknownDim
	}
	if recv := sig.Recv(); recv != nil {
		// A nullary float64 method on a units type is a named
		// accessor: the result carries the receiver's dimension.
		if name, ok := unitTypeName(recv.Type()); ok && sig.Params().Len() == 0 {
			return knownDim(unitDims[name])
		}
	}
	if ann, ok := c.funcAnn(fn); ok {
		if ann.anyDim {
			return unknownDim
		}
		return knownDim(ann.d)
	}
	return c.summaryOf(fn)
}

// dimOfMathCall gives the handful of stdlib math functions their
// dimensional meaning. Everything else (Log, Exp, Pow, …) is opaque:
// its arguments should be dimensionless ratios, and its result derives
// nothing.
func (c *dimChecker) dimOfMathCall(name string, call *ast.CallExpr) dimResult {
	switch name {
	case "Max", "Min":
		res := unknownDim
		for _, arg := range call.Args {
			if isConstExpr(c.info, arg) {
				continue
			}
			r := c.dimOf(arg)
			if !r.known {
				return unknownDim
			}
			if res.known && res.d != r.d {
				return unknownDim // mismatch; reported by the check walk
			}
			res = r
		}
		return res
	case "Abs", "Floor", "Ceil", "Round", "Trunc", "Mod":
		if len(call.Args) >= 1 {
			return c.dimOf(call.Args[0])
		}
	case "Sqrt":
		if len(call.Args) == 1 {
			if r := c.dimOf(call.Args[0]); r.known {
				if h, ok := r.d.Halve(); ok {
					return knownDim(h)
				}
			}
		}
	}
	return unknownDim
}

// dimOfBinary derives +, -, *, / results. Constants adopt the other
// side's dimension; mismatched additions derive nothing (the check
// walk reports them once, at the offending node).
func (c *dimChecker) dimOfBinary(b *ast.BinaryExpr) dimResult {
	xc, yc := isConstExpr(c.info, b.X), isConstExpr(c.info, b.Y)
	var dx, dy dimResult
	if !xc {
		dx = c.dimOf(b.X)
	}
	if !yc {
		dy = c.dimOf(b.Y)
	}
	switch b.Op {
	case token.ADD, token.SUB:
		switch {
		case xc && yc:
			return unknownDim
		case xc:
			return dy
		case yc:
			return dx
		case dx.known && dy.known && dx.d == dy.d:
			return dx
		}
	case token.MUL:
		switch {
		case xc && yc:
			return unknownDim
		case xc:
			return dy
		case yc:
			return dx
		case dx.known && dy.known:
			return knownDim(dx.d.Mul(dy.d))
		}
	case token.QUO:
		switch {
		case xc && yc:
			return unknownDim
		case xc: // 1/x inverts the dimension
			if dy.known {
				return knownDim(dy.d.Inv())
			}
		case yc:
			return dx
		case dx.known && dy.known:
			return knownDim(dx.d.Div(dy.d))
		}
	}
	return unknownDim
}

// summaryOf derives the result dimension of a module-local float64
// function from its body: if every return statement derives the same
// dimension, call sites adopt it. This is the cross-function,
// cross-package leg of the dataflow.
func (c *dimChecker) summaryOf(fn *types.Func) dimResult {
	if r, ok := c.facts.summaries[fn]; ok {
		return r
	}
	if c.facts.inProgress[fn] || fn.Pkg() == nil || c.dep == nil {
		return unknownDim
	}
	p := c.dep(fn.Pkg().Path())
	if p == nil {
		c.facts.summaries[fn] = unknownDim
		return unknownDim
	}
	decl := c.declFor(p, fn)
	if decl == nil || decl.Body == nil {
		c.facts.summaries[fn] = unknownDim
		return unknownDim
	}
	c.facts.inProgress[fn] = true
	sub := &dimChecker{
		info: p.Info, facts: c.facts, dep: c.dep,
		env:      map[types.Object]dimResult{},
		stripped: map[types.Object]string{},
	}
	r := sub.summarize(decl.Body)
	delete(c.facts.inProgress, fn)
	c.facts.summaries[fn] = r
	return r
}

// declFor finds fn's FuncDecl in p, building p's index on first use.
func (c *dimChecker) declFor(p *Package, fn *types.Func) *ast.FuncDecl {
	idx, ok := c.facts.decls[p.Path]
	if !ok {
		idx = map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if dfn, _ := p.Info.Defs[fd.Name].(*types.Func); dfn != nil {
						idx[dfn] = fd
					}
				}
			}
		}
		c.facts.decls[p.Path] = idx
	}
	return idx[fn]
}

// summarize walks a function body in source order, tracking float64
// locals, and folds the dimensions of its return expressions.
func (c *dimChecker) summarize(body *ast.BlockStmt) dimResult {
	res := unknownDim
	consistent := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !consistent {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			// A literal's returns are not the outer function's.
			return false
		case *ast.AssignStmt:
			c.applyAssign(s)
		case *ast.ReturnStmt:
			if len(s.Results) != 1 {
				consistent = false
				return false
			}
			r := c.dimOf(s.Results[0])
			if !r.known || (res.known && res.d != r.d) {
				consistent = false
				return false
			}
			res = r
		}
		return true
	})
	if !consistent {
		return unknownDim
	}
	return res
}

// ---------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------

// checkBody runs the full rule set over one function.
func (c *dimChecker) checkBody(body *ast.BlockStmt, parents map[ast.Node]ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(x)
			c.applyAssign(x)
		case *ast.BinaryExpr:
			c.checkBinary(x)
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.CompositeLit:
			c.checkComposite(x)
		}
		return true
	})
}

// dimLabel renders a dimension with its named units type when one
// exists: "J/flop (units.EnergyPerFlop)".
func dimLabel(d Dim) string {
	if name, ok := namedUnitFor(d); ok {
		return fmt.Sprintf("%s (units.%s)", d, name)
	}
	return d.String()
}

// checkBinary enforces like-dimension addition, subtraction, and
// ordered comparison. ==/!= belong to floatcmp.
func (c *dimChecker) checkBinary(b *ast.BinaryExpr) {
	var verb string
	switch b.Op {
	case token.ADD:
		verb = "adding"
	case token.SUB:
		verb = "subtracting"
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		verb = "comparing"
	default:
		return
	}
	if isConstExpr(c.info, b.X) || isConstExpr(c.info, b.Y) {
		return
	}
	dx, dy := c.dimOf(b.X), c.dimOf(b.Y)
	if !dx.known || !dy.known || dx.d == dy.d {
		return
	}
	c.pass.Reportf(b.OpPos, "%s %s and %s: incompatible dimensions", verb, dimLabel(dx.d), dimLabel(dy.d))
}

// checkAssign covers op-assignment mismatches and the boundary rules
// for field and map stores.
func (c *dimChecker) checkAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 || isConstExpr(c.info, a.Rhs[0]) {
			return
		}
		dl, dr := c.dimOf(a.Lhs[0]), c.dimOf(a.Rhs[0])
		if dl.known && dr.known && dl.d != dr.d {
			verb := "adding"
			if a.Tok == token.SUB_ASSIGN {
				verb = "subtracting"
			}
			c.pass.Reportf(a.TokPos, "%s %s and %s: incompatible dimensions", verb, dimLabel(dl.d), dimLabel(dr.d))
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		rhs := a.Rhs[i]
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if v, ok := c.info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
				c.checkFieldStore(v, rhs, c.structTagFor(l))
			}
		case *ast.IndexExpr:
			c.checkIndexStore(l, rhs)
		}
	}
}

// structTagFor finds the struct tag of the field selected by sel, best
// effort, so the diagnostic can call out JSON boundaries explicitly.
func (c *dimChecker) structTagFor(sel *ast.SelectorExpr) string {
	s, ok := c.info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	for _, idx := range s.Index() {
		t = derefType(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		if idx >= st.NumFields() {
			return ""
		}
		if st.Field(idx) == s.Obj() {
			return st.Tag(idx)
		}
		t = st.Field(idx).Type()
	}
	return ""
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// checkFieldStore enforces the boundary rules for one struct-field
// store: annotated fields must receive their declared dimension,
// unnamed dimensions must not land raw, and derived units must cross
// through accessors.
func (c *dimChecker) checkFieldStore(field *types.Var, rhs ast.Expr, tag string) {
	boundary := "struct field " + field.Name()
	if strings.Contains(tag, "json:") {
		boundary = "JSON field " + field.Name()
	}
	if ann, ok := c.fieldAnn(field); ok {
		if ann.anyDim {
			return
		}
		if r := c.dimOf(rhs); r.known && r.d != ann.d {
			c.pass.Reportf(rhs.Pos(), "storing %s into %s declared //archlint:dim %s", dimLabel(r.d), boundary, ann.d)
		}
		return
	}
	if isFloat64(field.Type()) {
		c.checkEscape(rhs, boundary)
	}
	if types.IsInterface(field.Type().Underlying()) {
		c.checkInterfaceEscape(rhs, boundary)
	}
}

// checkIndexStore enforces the same boundary rules for map stores.
func (c *dimChecker) checkIndexStore(idx *ast.IndexExpr, rhs ast.Expr) {
	tv, ok := c.info.Types[idx.X]
	if !ok {
		return
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return
	}
	if isFloat64(m.Elem()) {
		c.checkEscape(rhs, "map value")
	}
	if types.IsInterface(m.Elem().Underlying()) {
		c.checkInterfaceEscape(rhs, "map value")
	}
}

// checkComposite applies the boundary rules to composite-literal
// elements: struct fields (keyed or positional) and map values.
func (c *dimChecker) checkComposite(cl *ast.CompositeLit) {
	tv, ok := c.info.Types[cl]
	if !ok {
		return
	}
	switch t := derefType(tv.Type).Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			var field *types.Var
			var value ast.Expr
			var tag string
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				field, _ = c.info.Uses[id].(*types.Var)
				value = kv.Value
				for j := 0; j < t.NumFields(); j++ {
					if t.Field(j) == field {
						tag = t.Tag(j)
					}
				}
			} else if i < t.NumFields() {
				field, value, tag = t.Field(i), elt, t.Tag(i)
			}
			if field == nil || value == nil {
				continue
			}
			c.checkFieldStore(field, value, tag)
		}
	case *types.Map:
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if isFloat64(t.Elem()) {
				c.checkEscape(kv.Value, "map value")
			}
			if types.IsInterface(t.Elem().Underlying()) {
				c.checkInterfaceEscape(kv.Value, "map value")
			}
		}
	}
}

// checkCall covers units-conversion dimension mismatches, math.Max
// mixing, and the escape rules at call arguments.
func (c *dimChecker) checkCall(call *ast.CallExpr) {
	if target, ok := isConversion(c.info, call); ok {
		if name, ok := unitTypeName(target); ok && len(call.Args) == 1 && !isConstExpr(c.info, call.Args[0]) {
			if r := c.dimOf(call.Args[0]); r.known && r.d != unitDims[name] {
				c.pass.Reportf(call.Pos(), "converting a %s expression to units.%s (%s): dimensions disagree", r.d, name, unitDims[name])
			}
		}
		return
	}
	fn := calleeFunc(c.info, call)
	if fn == nil {
		return // builtins and function-typed values
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		c.checkMathMix(fn.Name(), call)
		return
	}
	if fn.Pkg() != nil && calleePkgExempt[fn.Pkg().Path()] {
		return
	}
	if _, ok := c.funcAnn(fn); ok {
		return // declared sink: boundary is blessed
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		callee := fn.Name()
		if fn.Pkg() != nil {
			callee = fn.Pkg().Name() + "." + fn.Name()
		}
		if types.IsInterface(pt.Underlying()) {
			c.checkInterfaceEscape(arg, "argument to "+callee)
		}
		if isFloat64(pt) {
			c.checkEscape(arg, "argument to "+callee)
		}
	}
}

// checkMathMix reports math.Max/Min over incompatible dimensions — the
// same mistake as adding them, wearing a function call.
func (c *dimChecker) checkMathMix(name string, call *ast.CallExpr) {
	if name != "Max" && name != "Min" {
		return
	}
	seen := unknownDim
	for _, arg := range call.Args {
		if isConstExpr(c.info, arg) {
			continue
		}
		r := c.dimOf(arg)
		if !r.known {
			return
		}
		if seen.known && seen.d != r.d {
			c.pass.Reportf(call.Pos(), "math.%s mixes %s and %s: incompatible dimensions", name, dimLabel(seen.d), dimLabel(r.d))
			return
		}
		seen = r
	}
}

// checkInterfaceEscape flags a units-typed value boxed into an
// interface: json encoding, %v formatting through non-fmt wrappers,
// and reflection all see a bare number whose dimension is gone.
func (c *dimChecker) checkInterfaceEscape(e ast.Expr, boundary string) {
	tv, ok := c.info.Types[ast.Unparen(e)]
	if !ok {
		return
	}
	name, ok := unitTypeName(tv.Type)
	if !ok {
		return
	}
	c.pass.Reportf(e.Pos(), "units.%s escapes as a bare interface value (%s); strip it by name with .%s() or declare the sink with //archlint:dim", name, boundary, unitAccessors[name])
}

// checkEscape enforces the float64 boundary rules at e: an unnamed
// derived dimension must not escape raw, and a derived units value
// must escape through its accessor, not float64(...). Reported strips
// carry a -fix rewrite to the accessor.
func (c *dimChecker) checkEscape(e ast.Expr, boundary string) {
	if unit, conv, ok := c.stripSource(e); ok {
		if _, guarded := guardedUnits[unit]; guarded {
			return // unitsafety already reports these conversions everywhere
		}
		c.pass.Reportf(e.Pos(), "float64(...) strips units.%s (%s); use .%s()", unit, boundary, unitAccessors[unit])
		if conv != nil {
			c.fixStrip(conv, unit)
		}
		return
	}
	r := c.dimOf(e)
	if !r.known || r.d.IsZero() {
		return
	}
	if _, named := namedUnitFor(r.d); named {
		// A named dimension built in the open (e.Joules()/t.Seconds())
		// stays readable at the boundary; only raw strips are flagged.
		return
	}
	c.pass.Reportf(e.Pos(), "expression of dimension %s escapes (%s) but no units type names it; wrap the result or declare the sink with //archlint:dim", r.d, boundary)
}

// stripSource reports whether e is (up to parens, sign, and scaling by
// constants) a bare float64(unitValue) conversion or a local variable
// initialized from one. conv is the conversion call when it is in this
// expression (eligible for -fix).
func (c *dimChecker) stripSource(e ast.Expr) (unit string, conv *ast.CallExpr, ok bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.stripSource(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return c.stripSource(x.X)
		}
	case *ast.BinaryExpr:
		if x.Op != token.MUL && x.Op != token.QUO {
			return "", nil, false
		}
		if isConstExpr(c.info, x.Y) {
			return c.stripSource(x.X)
		}
		if isConstExpr(c.info, x.X) && x.Op == token.MUL {
			return c.stripSource(x.Y)
		}
	case *ast.Ident:
		if obj := c.info.ObjectOf(x); obj != nil {
			if unit, ok := c.stripped[obj]; ok {
				return unit, nil, true
			}
		}
	case *ast.CallExpr:
		target, isConv := isConversion(c.info, x)
		if !isConv || len(x.Args) != 1 || !isFloat64(target) {
			return "", nil, false
		}
		tv, ok := c.info.Types[x.Args[0]]
		if !ok || tv.Value != nil {
			return "", nil, false
		}
		if name, ok := unitTypeName(tv.Type); ok {
			return name, x, true
		}
	}
	return "", nil, false
}

// fixStrip rewrites float64(x) to x.<Accessor>(), mirroring
// unitsafety's fix for the guarded types.
func (c *dimChecker) fixStrip(conv *ast.CallExpr, unit string) {
	operand := ast.Unparen(conv.Args[0])
	text := c.pass.ExprText(operand)
	if text == "" {
		return
	}
	switch operand.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		// Postfix method call binds directly.
	default:
		text = "(" + text + ")"
	}
	c.pass.Edit(conv.Pos(), conv.End(), text+"."+unitAccessors[unit]+"()")
}

// applyAssign updates the per-function dataflow environment after an
// assignment statement, in source order.
func (c *dimChecker) applyAssign(a *ast.AssignStmt) {
	set := func(lhs ast.Expr, update func(obj types.Object)) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.info.ObjectOf(id)
		if obj == nil || !isFloat64(obj.Type()) {
			return
		}
		update(obj)
	}
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) != len(a.Rhs) {
			// Multi-value assignment: anything previously known about
			// the targets is no longer trustworthy.
			for _, lhs := range a.Lhs {
				set(lhs, func(obj types.Object) {
					delete(c.env, obj)
					delete(c.stripped, obj)
				})
			}
			return
		}
		for i, lhs := range a.Lhs {
			rhs := a.Rhs[i]
			set(lhs, func(obj types.Object) {
				if r := c.dimOf(rhs); r.known {
					c.env[obj] = r
				} else {
					delete(c.env, obj)
				}
				if unit, _, ok := c.stripSource(rhs); ok {
					c.stripped[obj] = unit
				} else {
					delete(c.stripped, obj)
				}
			})
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		set(a.Lhs[0], func(obj types.Object) {
			if _, ok := c.env[obj]; ok {
				return // same dimension by the addition rule
			}
			if r := c.dimOf(a.Rhs[0]); r.known && !isConstExpr(c.info, a.Rhs[0]) {
				c.env[obj] = r
			}
		})
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		set(a.Lhs[0], func(obj types.Object) {
			cur, ok := c.env[obj]
			if !ok {
				return
			}
			if isConstExpr(c.info, a.Rhs[0]) {
				return
			}
			r := c.dimOf(a.Rhs[0])
			if !r.known {
				delete(c.env, obj)
				delete(c.stripped, obj)
				return
			}
			if a.Tok == token.MUL_ASSIGN {
				c.env[obj] = knownDim(cur.d.Mul(r.d))
			} else {
				c.env[obj] = knownDim(cur.d.Div(r.d))
			}
		})
	}
}
