package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body does order-sensitive
// work: appending to a slice, writing output (fmt.Fprint*, Write*,
// AddRow, Encode), or assigning to a variable declared outside the
// loop. Go randomises map iteration order, so any of these makes
// report tables and JSON documents differ run to run.
//
// The one exempt shape is the collect-then-sort idiom — a body that
// only appends the range key to a slice (`for k := range m { keys =
// append(keys, k) }`), which is precisely how the findings get fixed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration feeding order-sensitive output or state",
	Run:  runMapOrder,
}

// outputCallNames are function/method names whose invocation inside a
// map-range body makes the emitted bytes depend on iteration order.
var outputCallNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectLoop(pass, rng) {
				return true
			}
			if reason := orderSensitiveWork(pass, rng); reason != "" {
				pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and the body %s; sort the keys first", reason)
			}
			return true
		})
	}
}

// isKeyCollectLoop matches `for k := range m { keys = append(keys, k) }`.
func isKeyCollectLoop(pass *Pass, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.Info.Uses[arg] == pass.Info.Defs[key]
}

// orderSensitiveWork scans the loop body for order-dependent effects
// and describes the first one found, or returns "".
func orderSensitiveWork(pass *Pass, rng *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && fn.Name == "append" {
				reason = "appends to a slice"
				return false
			}
			var name string
			switch fun := ast.Unparen(s.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if outputCallNames[name] {
				reason = "writes output via " + name
				return false
			}
		case *ast.AssignStmt:
			if r := outerAssignment(pass, rng, s); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// outerAssignment reports order-dependent writes to variables declared
// outside the range statement. Plain `=` is last-writer-wins;
// float-typed `+=`-style updates are non-associative, so their result
// depends on visit order too. Integer accumulation is commutative and
// stays exempt, as do writes through indexing (m2[k] = v is
// key-addressed, not order-addressed).
func outerAssignment(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) string {
	if assign.Tok == token.DEFINE {
		return ""
	}
	for _, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos {
			continue
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue // declared inside the loop
		}
		if assign.Tok == token.ASSIGN {
			if len(assign.Rhs) == 1 {
				if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
					if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" {
						return "appends to " + id.Name
					}
				}
			}
			return "assigns to " + id.Name + " declared outside the loop"
		}
		if underlyingFloat(obj.Type()) {
			return "accumulates into float " + id.Name + " (non-associative)"
		}
	}
	return ""
}
