package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFixture lints one testdata fixture package with a single analyzer
// enabled.
func runFixture(t *testing.T, name string, fix bool) *Result {
	t.Helper()
	res, err := Run(Config{
		Dir:      filepath.Join("testdata", "src", name),
		Patterns: []string{"."},
		Enable:   []string{name},
		Fix:      fix,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return res
}

// TestAnalyzerGolden runs each analyzer end-to-end over its fixture and
// compares the diagnostics (file:line:col, analyzer, message) against
// the golden transcript. Every fixture mixes flagged and clean code, so
// a pass also demonstrates the analyzer staying quiet where it should.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			res := runFixture(t, a.Name, false)
			var got []string
			for _, d := range res.Unsuppressed() {
				got = append(got, d.String())
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", a.Name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			wantLines := strings.Split(strings.TrimSpace(string(want)), "\n")
			if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
				t.Errorf("diagnostics mismatch\ngot:\n%s\nwant:\n%s",
					strings.Join(got, "\n"), strings.Join(wantLines, "\n"))
			}
			if len(got) == 0 {
				t.Error("fixture produced no diagnostics; want at least one")
			}
		})
	}
}

// TestSuppression checks the //archlint:ignore path: directives on the
// same line and the line above both suppress, reasons survive, and
// nothing leaks out unsuppressed.
func TestSuppression(t *testing.T) {
	res, err := Run(Config{
		Dir:      filepath.Join("testdata", "src", "suppress"),
		Patterns: []string{"."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if un := res.Unsuppressed(); len(un) != 0 {
		t.Fatalf("want all findings suppressed, got %d unsuppressed: %v", len(un), un)
	}
	if len(res.Diags) != 2 {
		t.Fatalf("want 2 suppressed findings, got %d: %v", len(res.Diags), res.Diags)
	}
	for _, d := range res.Diags {
		if !d.Suppressed || d.Reason == "" {
			t.Errorf("finding %v should be suppressed with a reason", d)
		}
	}
}

// TestBadDirective checks that a malformed or unknown suppression is
// itself reported instead of silently ignored.
func TestBadDirective(t *testing.T) {
	dir := writeTempFixture(t, "baddirective", `package baddirective

// reasonless directive and unknown analyzer below:
func cmp(a, b float64) bool {
	//archlint:ignore floatcmp
	x := a == b
	//archlint:ignore nosuchanalyzer because
	y := a != b
	return x || y
}
`)
	res, err := Run(Config{Dir: dir, Patterns: []string{"."}})
	if err != nil {
		t.Fatal(err)
	}
	var directiveDiags, floatDiags int
	for _, d := range res.Unsuppressed() {
		switch d.Analyzer {
		case "archlint":
			directiveDiags++
		case "floatcmp":
			floatDiags++
		}
	}
	if directiveDiags != 2 {
		t.Errorf("want 2 malformed-directive diagnostics, got %d: %v", directiveDiags, res.Diags)
	}
	if floatDiags != 2 {
		t.Errorf("malformed directives must not suppress; want 2 floatcmp findings, got %d", floatDiags)
	}
}

// TestJSONOutput encodes a run's diagnostics the way `archlint -json`
// does and checks the wire fields.
func TestJSONOutput(t *testing.T) {
	res := runFixture(t, "floatcmp", false)
	data, err := json.Marshal(res.Unsuppressed())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Diagnostic
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 3 {
		t.Fatalf("want 3 findings over the wire, got %d", len(decoded))
	}
	for _, d := range decoded {
		if d.Analyzer != "floatcmp" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestFixMode applies unitsafety's auto-fixes to a scratch copy of the
// fixture and verifies every conversion finding disappears, leaving
// only the (non-fixable) dimensional-arithmetic finding.
func TestFixMode(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "unitsafety", "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTempFixture(t, "unitsafety", string(src))

	res, err := Run(Config{Dir: dir, Patterns: []string{"."}, Enable: []string{"unitsafety"}, Fix: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FixedFiles) != 1 {
		t.Fatalf("want 1 fixed file, got %v", res.FixedFiles)
	}

	res2, err := Run(Config{Dir: dir, Patterns: []string{"."}, Enable: []string{"unitsafety"}})
	if err != nil {
		t.Fatalf("fixed fixture no longer loads: %v", err)
	}
	remaining := res2.Unsuppressed()
	if len(remaining) != 1 || !strings.Contains(remaining[0].Message, "multiplying") {
		t.Fatalf("want only the arithmetic finding after -fix, got %v", remaining)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".Seconds()", ".Joules()", ".Watts()", ".Count()", ".Ratio()"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %s", want)
		}
	}
}

// TestEnableDisable checks the analyzer selection flags.
func TestEnableDisable(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floatcmp")
	res, err := Run(Config{Dir: dir, Patterns: []string{"."}, Disable: []string{"floatcmp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsuppressed()) != 0 {
		t.Errorf("disabled analyzer still reported: %v", res.Diags)
	}
	if _, err := Run(Config{Dir: dir, Patterns: []string{"."}, Enable: []string{"nosuch"}}); err == nil {
		t.Error("want error for unknown analyzer name")
	}
}

// TestRepoIsClean runs the full suite over the whole repository — the
// acceptance bar for `go run ./cmd/archlint ./...`: every finding must
// be fixed or carry a reasoned suppression.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint is not short")
	}
	res, err := Run(Config{Dir: filepath.Join("..", ".."), Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Unsuppressed() {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// writeTempFixture creates a scratch fixture package under testdata (it
// must live inside the module so module-local imports resolve) and
// returns its directory.
func writeTempFixture(t *testing.T, name, src string) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", "scratch-"+name+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}
