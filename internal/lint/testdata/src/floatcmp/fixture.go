// Package floatcmp is an archlint test fixture: exact floating-point
// comparisons next to the exempt idioms.
package floatcmp

// Celsius exercises named types whose underlying type is a float.
type Celsius float64

// Bad: exact equality between computed floats.
func bad(a, b float64) bool {
	return a == b
}

// Bad: != is just as fragile, and float32 counts too.
func bad32(a, b float32) bool {
	return a != b
}

// Bad: named float types are still floats underneath.
func badNamed(x, y Celsius) bool {
	return x == y
}

// Clean: zero is exactly representable; == 0 is a sentinel check.
func cleanZero(a float64) bool {
	return a == 0
}

// Clean: x != x is the NaN idiom.
func cleanNaN(x float64) bool {
	return x != x
}

// Clean: integer comparison is exact.
func cleanInt(i, j int) bool {
	return i == j
}
