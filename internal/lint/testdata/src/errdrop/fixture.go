// Package errdrop is an archlint test fixture: discarded errors next
// to the exempt output shapes.
package errdrop

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func alsoValue() (int, error) { return 0, nil }

// Bad: both calls drop their error on the floor (os.Stdout writes are
// product output, unlike stderr diagnostics).
func bad() {
	mayFail()
	fmt.Fprintf(os.Stdout, "boom\n")
}

// Bad: a dropped (value, error) pair counts too.
func badTuple() {
	alsoValue()
}

// Clean: checked, acknowledged, or infallible.
func clean() error {
	if err := mayFail(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.WriteString("ok")
	fmt.Println(b.String())
	fmt.Fprintln(os.Stderr, "stderr diagnostics have no recovery path")
	_ = mayFail()
	return nil
}
