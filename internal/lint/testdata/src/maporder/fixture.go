// Package maporder is an archlint test fixture: map iteration feeding
// order-sensitive work, next to the sorted-keys discipline.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// Bad: appended rows come out in a different order every run.
func badAppend(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	return rows
}

// Bad: bytes hit the writer in map order.
func badWrite(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %g\n", k, v)
	}
}

// Bad: last-writer-wins on a variable declared outside the loop.
func badAssign(m map[string]int) string {
	winner := ""
	for k := range m {
		if len(k) > 3 {
			winner = k
		}
	}
	return winner
}

// Bad: float accumulation is non-associative, so even a sum depends on
// visit order in the low bits.
func badFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Clean: collect keys, sort, then emit.
func clean(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows []string
	for _, k := range keys {
		rows = append(rows, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return rows
}

// Clean: integer accumulation is commutative.
func cleanCount(m map[string]int) int {
	total := 0
	for range m {
		total++
	}
	return total
}
