// Package spanclose is an archlint test fixture: spans started without
// a deferred End, next to clean code that must not be flagged.
package spanclose

import (
	"context"

	"archline/internal/obs"
)

// Clean: the canonical idiom, defer immediately after Start.
func clean(ctx context.Context) {
	ctx, span := obs.Start(ctx, "clean.op")
	defer span.End()
	_ = ctx
}

// Clean: the defer may come later, as long as it is in the same block.
func cleanLater(ctx context.Context) {
	ctx, span := obs.Start(ctx, "clean.later")
	_ = ctx
	defer span.End()
}

// Bad: the span is never ended, so it never exports.
func leaks(ctx context.Context) {
	ctx, span := obs.Start(ctx, "leaks.op")
	_ = ctx
	_ = span
}

// Bad: the span result is discarded outright.
func discards(ctx context.Context) {
	ctx, _ = obs.Start(ctx, "discards.op")
	_ = ctx
}

// Bad: End is called, but not deferred — an early return or panic
// between Start and End loses the span.
func conditional(ctx context.Context, fail bool) {
	ctx, span := obs.Start(ctx, "conditional.op")
	if fail {
		return
	}
	_ = ctx
	span.End()
}

// Bad: both results dropped on the floor.
func dropped(ctx context.Context) {
	obs.Start(ctx, "dropped.op")
}

// Bad: the closure opens its own span and leaks it; the outer span is
// handled correctly and must not be flagged.
func nested(ctx context.Context) {
	ctx, span := obs.Start(ctx, "nested.outer")
	defer span.End()
	f := func() {
		_, inner := obs.Start(ctx, "nested.inner")
		_ = inner
	}
	f()
}
