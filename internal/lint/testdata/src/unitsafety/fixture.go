// Package unitsafety is an archlint test fixture: bad unit-stripping
// casts and dimensionally wrong arithmetic, next to clean code that
// must not be flagged.
package unitsafety

import (
	"fmt"

	"archline/internal/units"
)

// Bad: raw float64 conversions strip the unit types.
func bad(t units.Time, e units.Energy, p units.Power) float64 {
	sum := float64(t) + float64(e)
	sum += float64(p) * 2
	return sum
}

// Bad: counts and intensities lose their meaning the same way.
func badCounts(w units.Flops, q units.Bytes, i units.Intensity) float64 {
	return float64(w)/float64(q) + float64(i)
}

// Bad: access counts are guarded like the other counters.
func badAccesses(n units.Accesses) float64 {
	return float64(n) / 2
}

// Bad: Time*Time compiles but seconds-squared is not a Time.
func area(t units.Time) units.Time {
	return t * t
}

// Clean: named accessors keep the physical meaning at the call site.
func clean(t units.Time, p units.Power) float64 {
	return t.Seconds() + p.Watts()
}

// Clean: formatting call sites may take plain floats.
func format(t units.Time, p units.Power) string {
	return fmt.Sprintf("%g %s", float64(t), units.FormatSI(float64(p), "W", 3))
}

// Clean: scaling by a constant is ordinary unit arithmetic.
func double(t units.Time) units.Time {
	return 2 * t
}
