// Package suppress is an archlint test fixture for the
// //archlint:ignore directive: every finding here carries a reason and
// must come back suppressed.
package suppress

// cmpAbove suppresses with a directive on the line above.
func cmpAbove(a, b float64) bool {
	//archlint:ignore floatcmp fixture exercises the line-above directive
	return a == b
}

// cmpTrailing suppresses with a trailing same-line directive.
func cmpTrailing(a, b float64) bool {
	return a != b //archlint:ignore floatcmp fixture exercises the same-line directive
}
