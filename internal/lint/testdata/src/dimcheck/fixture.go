// Package dimcheck is an archlint test fixture: dimensionally
// inconsistent fitted-constant arithmetic, unnamed result dimensions
// escaping raw, and unit-stripping escapes, next to clean physics that
// must not be flagged.
package dimcheck

import (
	"archline/internal/units"
)

// metric is a JSON envelope: raw float64 boundaries where derived
// units must cross through their named accessors.
type metric struct {
	Gflops float64 `json:"gflops"`
	S2     float64 `json:"s2"`
}

// sample declares its field's dimension; stores are checked against it.
type sample struct {
	// Draw is the sustained draw.
	//archlint:dim Power
	Draw float64
}

// record accepts any dimensioned scalar for a trace buffer.
//
//archlint:dim any
func record(v float64) float64 { return v }

// consume is an ordinary sink: unnamed dimensions may not land here.
func consume(v float64) float64 { return v }

// leak returns joules-per-flop as a raw float64; callers inherit the
// dimension through the function summary.
func leak(eps units.EnergyPerFlop) float64 {
	return eps.JoulesPerFlop() * 2
}

// Bad: the paper's eps (J/flop) and pi (W) are different quantities
// even though both accessors return float64.
func addMismatch(eps units.EnergyPerFlop, pi units.Power) float64 {
	return eps.JoulesPerFlop() + pi.Watts()
}

// Bad: ordered comparison across dimensions is as meaningless as
// addition.
func compareMismatch(t units.Time, e units.Energy) bool {
	return t.Seconds() > e.Joules()
}

// Bad: the mismatch survives locals and a function call.
func summaryMismatch(eps units.EnergyPerFlop, pi units.Power) float64 {
	w := pi.Watts()
	return leak(eps) + w
}

// Bad: a joule value is not a power; the conversion lies.
func convertMismatch(e units.Energy) units.Power {
	return units.Power(e.Joules())
}

// Bad: seconds-squared names no units type and escapes raw.
func unnamedEscape(t units.Time) metric {
	s2 := t.Seconds() * t.Seconds()
	consume(s2)
	return metric{S2: s2}
}

// Bad: float64(...) strips the derived rate at a JSON boundary.
func stripEscape(r units.FlopRate) metric {
	return metric{Gflops: float64(r) / 1e9}
}

// Bad: boxing the typed value loses the dimension to reflection.
func interfaceEscape(r units.FlopRate) map[string]any {
	return map[string]any{"rate": r}
}

// Bad: the annotated field declares W but receives J.
func annotatedMismatch(e units.Energy) sample {
	return sample{Draw: e.Joules()}
}

//archlint:dim Watts
func malformed(v float64) float64 { return v }

// Clean: energy over time is a power, by derivation and by name.
func cleanPower(e units.Energy, t units.Time) units.Power {
	return units.Power(e.Joules() / t.Seconds())
}

// Clean: the blessed sink takes any dimension, including s^2.
func cleanBlessed(t units.Time) float64 {
	return record(t.Seconds() * t.Seconds())
}

// Clean: the annotated field receives exactly its declared dimension.
func cleanAnnotated(e units.Energy, t units.Time) sample {
	return sample{Draw: e.Joules() / t.Seconds()}
}

// Clean: constants are dimensionless scale factors, not mismatches.
func cleanScale(t units.Time) float64 {
	return 2*t.Seconds() + 1e-9
}

// coeffs is a precomputed coefficient table: raw floats of several
// different dimensions by design, blessed wholesale at the type level
// instead of field by field.
//
//archlint:dim any
type coeffs struct {
	S2 float64 // seconds-squared: no units type names it
	E  float64 // joules
	N  int     // non-float fields are outside the directive's scope
}

// gauge declares one dimension for every float64 field at the type
// level; a field-level directive overrides it for that field.
//
//archlint:dim Power
type gauge struct {
	Idle float64
	Peak float64
	//archlint:dim Energy
	Budget float64
}

// Clean: the type-level any blesses unnamed dimensions landing raw.
func cleanTypeAny(t units.Time, e units.Energy) coeffs {
	return coeffs{S2: t.Seconds() * t.Seconds(), E: e.Joules()}
}

// Bad: the type-level default declares W but Peak receives J.
func typeAnnotatedMismatch(e units.Energy) gauge {
	return gauge{Peak: e.Joules()}
}

// Clean: Idle takes the declared power; Budget's field-level Energy
// override beats the type-level Power default.
func cleanTypeAnnotated(e units.Energy, t units.Time) gauge {
	return gauge{Idle: e.Joules() / t.Seconds(), Budget: e.Joules()}
}
