// Package ctxgoroutine is an archlint test fixture: unhygienic
// goroutine launches next to the worker-pool discipline.
package ctxgoroutine

import "sync"

// Bad: fire-and-forget with no join in the enclosing function.
func badNoJoin(fn func()) {
	go fn()
}

// Bad: the closure captures the loop variable instead of taking it as
// an argument.
func badCapture(items []int, out []int) {
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it
		}()
	}
	wg.Wait()
}

// Clean: loop values passed as arguments, WaitGroup join visible.
func clean(items []int, out []int) {
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			out[i] = v
		}(i, it)
	}
	wg.Wait()
}

// Clean: a channel receive is also a join.
func cleanChannel(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
