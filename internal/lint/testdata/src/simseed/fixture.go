// Package simseed is an archlint test fixture: sim.Options literals
// missing an explicit Seed, next to clean code that must not be
// flagged.
package simseed

import "archline/internal/sim"

// Bad: Seed omitted — the zero seed is invisible at the call site.
func bad() sim.Options {
	return sim.Options{Noiseless: true}
}

// Bad: the empty literal hides the seed the same way.
var defaultOpts = sim.Options{}

// Clean: an explicit Seed, even zero, is a visible choice.
func clean() sim.Options {
	return sim.Options{Seed: 0, Noiseless: true}
}

// Clean: a positional literal spells out every field.
var allFields = sim.Options{7, false, true, nil, false}

// Clean: other packages' Options types are not this analyzer's business.
type Options struct{ Verbose bool }

var local = Options{}
