package lint

import (
	"go/ast"
	"go/types"
)

// SimSeed flags sim.Options composite literals that do not set Seed
// explicitly. The simulator's noise model is seeded, and an implicit
// zero seed is indistinguishable from an accidental one: every
// measurement-bearing artefact in this repo (tables, figure data, the
// CSV export) must be reproducible from a seed that is visible at the
// construction site. Test files are not loaded by the driver, so this
// applies to non-test code only.
var SimSeed = &Analyzer{
	Name: "simseed",
	Doc:  "flags sim.Options literals without an explicit Seed",
	Run:  runSimSeed,
}

// simPackagePath is the package whose Options type carries the seed.
const simPackagePath = "archline/internal/sim"

func runSimSeed(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[cl]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Name() != "Options" || obj.Pkg() == nil || obj.Pkg().Path() != simPackagePath {
				return true
			}
			if !simSeedSet(cl) {
				pass.Reportf(cl.Pos(),
					"sim.Options literal without an explicit Seed; set Seed so the run is reproducible")
			}
			return true
		})
	}
}

// simSeedSet reports whether the literal pins the Seed field: either a
// Seed: key, or positional form (which must populate every field).
func simSeedSet(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: all fields present, Seed included
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Seed" {
			return true
		}
	}
	return false
}
