package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unitsPkgPath is the package whose named quantity types the analyzer
// protects.
const unitsPkgPath = "archline/internal/units"

// guardedUnits maps each protected units type to the accessor method
// that strips it *by name*, keeping the physical meaning visible at the
// call site.
var guardedUnits = map[string]string{
	"Time":      "Seconds",
	"Energy":    "Joules",
	"Power":     "Watts",
	"Flops":     "Count",
	"Bytes":     "Count",
	"Accesses":  "Count",
	"Intensity": "Ratio",
}

// UnitSafety flags raw float64(...) conversions that silently strip a
// protected units type outside the units package and outside formatting
// call sites, and flags multiplication or division of two unit-typed
// values (Time*Time compiles but is dimensionally meaningless). In fix
// mode the conversions rewrite to the named accessor methods.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flags float64(...) casts and arithmetic that defeat the units type system",
	Run:  runUnitSafety,
}

// guardedUnitType returns the protected type name when t is one of the
// guarded named types from internal/units.
func guardedUnitType(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return "", false
	}
	_, guarded := guardedUnits[obj.Name()]
	return obj.Name(), guarded
}

func runUnitSafety(pass *Pass) {
	if pass.Pkg.Path() == unitsPkgPath {
		return
	}
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, parents, e)
			case *ast.BinaryExpr:
				checkUnitArithmetic(pass, e)
			}
			return true
		})
	}
}

// checkUnitConversion flags float64(x) where x has a guarded unit type.
func checkUnitConversion(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	target, ok := isConversion(pass.Info, call)
	if !ok || len(call.Args) != 1 {
		return
	}
	basic, ok := target.(*types.Basic)
	if !ok || basic.Kind() != types.Float64 {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value != nil {
		return
	}
	name, guarded := guardedUnitType(tv.Type)
	if !guarded {
		return
	}
	if inFormattingCall(pass.Info, parents, call) {
		return
	}
	method := guardedUnits[name]
	pass.Reportf(call.Pos(), "float64(...) strips units.%s; use .%s()", name, method)
	operand := ast.Unparen(arg)
	text := pass.ExprText(operand)
	if text == "" {
		return
	}
	switch operand.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		// Postfix method call binds directly.
	default:
		text = "(" + text + ")"
	}
	pass.Edit(call.Pos(), call.End(), text+"."+method+"()")
}

// inFormattingCall reports whether the conversion is directly an
// argument to a call into package fmt or the units package itself —
// format strings and SI-prefix helpers legitimately take plain floats.
func inFormattingCall(info *types.Info, parents map[ast.Node]ast.Node, n ast.Node) bool {
	p := parents[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = parents[pe]
			continue
		}
		break
	}
	call, ok := p.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch calleePkgPath(info, call) {
	case "fmt", unitsPkgPath:
		return true
	}
	return false
}

// checkUnitArithmetic flags x*y and x/y where both operands carry the
// same guarded unit type: the result type lies about its dimension
// (seconds * seconds is not a Time).
func checkUnitArithmetic(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.MUL && e.Op != token.QUO {
		return
	}
	if isConstExpr(pass.Info, e.X) || isConstExpr(pass.Info, e.Y) {
		return
	}
	xt, xok := pass.Info.Types[e.X]
	yt, yok := pass.Info.Types[e.Y]
	if !xok || !yok {
		return
	}
	xn, xg := guardedUnitType(xt.Type)
	_, yg := guardedUnitType(yt.Type)
	if !xg || !yg {
		return
	}
	op := "multiplying"
	if e.Op == token.QUO {
		op = "dividing"
	}
	pass.Reportf(e.Pos(), "%s two units.%s values yields a dimensionally wrong units.%s; convert explicitly", op, xn, xn)
}
