package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// Dim is a dimension vector over the model's base dimensions: the
// exponents of time, energy, flop, byte, and access. Every quantity in
// internal/units is a product of integer powers of these five bases —
// Power is energy·time⁻¹, Intensity is flop·byte⁻¹ — so dimensional
// consistency of an arithmetic expression reduces to integer vector
// addition, which is what makes a static analyzer feasible where the
// type system gives up (raw float64 arithmetic on accessor results).
type Dim struct {
	Time, Energy, Flop, Byte, Access int8
}

// IsZero reports whether d is dimensionless.
func (d Dim) IsZero() bool { return d == Dim{} }

// Mul returns the dimension of a product: exponents add.
func (d Dim) Mul(o Dim) Dim {
	return Dim{
		Time:   d.Time + o.Time,
		Energy: d.Energy + o.Energy,
		Flop:   d.Flop + o.Flop,
		Byte:   d.Byte + o.Byte,
		Access: d.Access + o.Access,
	}
}

// Div returns the dimension of a quotient: exponents subtract.
func (d Dim) Div(o Dim) Dim {
	return Dim{
		Time:   d.Time - o.Time,
		Energy: d.Energy - o.Energy,
		Flop:   d.Flop - o.Flop,
		Byte:   d.Byte - o.Byte,
		Access: d.Access - o.Access,
	}
}

// Inv returns the dimension of a reciprocal.
func (d Dim) Inv() Dim { return Dim{}.Div(d) }

// Halve returns the dimension of a square root and whether it exists
// (every exponent must be even).
func (d Dim) Halve() (Dim, bool) {
	if d.Time%2 != 0 || d.Energy%2 != 0 || d.Flop%2 != 0 || d.Byte%2 != 0 || d.Access%2 != 0 {
		return Dim{}, false
	}
	return Dim{d.Time / 2, d.Energy / 2, d.Flop / 2, d.Byte / 2, d.Access / 2}, true
}

// dimBase is one base dimension's display symbol and accessor to the
// vector component.
type dimBase struct {
	sym string
	get func(Dim) int8
}

// dimBases fixes the display order of base symbols.
var dimBases = []dimBase{
	{"J", func(d Dim) int8 { return d.Energy }},
	{"flop", func(d Dim) int8 { return d.Flop }},
	{"B", func(d Dim) int8 { return d.Byte }},
	{"acc", func(d Dim) int8 { return d.Access }},
	{"s", func(d Dim) int8 { return d.Time }},
}

// String renders the dimension in conventional unit notation: "J/flop",
// "s^2", "1/s", "flop/(B·s)". Dimensionless renders as "1".
func (d Dim) String() string {
	var num, den []string
	for _, b := range dimBases {
		switch e := b.get(d); {
		case e == 1:
			num = append(num, b.sym)
		case e > 1:
			num = append(num, fmt.Sprintf("%s^%d", b.sym, e))
		case e == -1:
			den = append(den, b.sym)
		case e < -1:
			den = append(den, fmt.Sprintf("%s^%d", b.sym, -e))
		}
	}
	n := "1"
	if len(num) > 0 {
		n = strings.Join(num, "·")
	}
	switch len(den) {
	case 0:
		return n
	case 1:
		return n + "/" + den[0]
	default:
		return n + "/(" + strings.Join(den, "·") + ")"
	}
}

// unitDims assigns every named quantity type in internal/units its
// dimension vector. This is the analyzer's ground truth: an expression
// whose static type is one of these carries the dimension, and accessor
// calls (.Seconds(), .JoulesPerFlop(), …) propagate it onto the raw
// float64 result.
var unitDims = map[string]Dim{
	"Time":            {Time: 1},
	"Energy":          {Energy: 1},
	"Power":           {Energy: 1, Time: -1},
	"Flops":           {Flop: 1},
	"Bytes":           {Byte: 1},
	"Accesses":        {Access: 1},
	"Intensity":       {Flop: 1, Byte: -1},
	"FlopRate":        {Flop: 1, Time: -1},
	"ByteRate":        {Byte: 1, Time: -1},
	"AccessRate":      {Access: 1, Time: -1},
	"TimePerFlop":     {Time: 1, Flop: -1},
	"TimePerByte":     {Time: 1, Byte: -1},
	"EnergyPerFlop":   {Energy: 1, Flop: -1},
	"EnergyPerByte":   {Energy: 1, Byte: -1},
	"EnergyPerAccess": {Energy: 1, Access: -1},
	"FlopsPerJoule":   {Flop: 1, Energy: -1},
	"BytesPerJoule":   {Byte: 1, Energy: -1},
}

// unitAccessors maps each units type to the accessor method that strips
// it by name. It extends unitsafety's guardedUnits table to the derived
// quantity types, whose escapes dimcheck polices at boundaries.
var unitAccessors = map[string]string{
	"Time":            "Seconds",
	"Energy":          "Joules",
	"Power":           "Watts",
	"Flops":           "Count",
	"Bytes":           "Count",
	"Accesses":        "Count",
	"Intensity":       "Ratio",
	"FlopRate":        "FlopsPerSec",
	"ByteRate":        "BytesPerSec",
	"AccessRate":      "AccessesPerSec",
	"TimePerFlop":     "SecondsPerFlop",
	"TimePerByte":     "SecondsPerByte",
	"EnergyPerFlop":   "JoulesPerFlop",
	"EnergyPerByte":   "JoulesPerByte",
	"EnergyPerAccess": "JoulesPerAccess",
	"FlopsPerJoule":   "FlopsPerJoule",
	"BytesPerJoule":   "BytesPerJoule",
}

// dimToUnit is the reverse of unitDims, mapping a dimension vector back
// to the named units type spelling it. Built once at init; the forward
// table is injective, which dimsConsistent verifies in tests.
var dimToUnit = func() map[Dim]string {
	m := map[Dim]string{}
	for name, d := range unitDims {
		if prev, ok := m[d]; ok {
			panic("lint: units " + prev + " and " + name + " share a dimension")
		}
		m[d] = name
	}
	return m
}()

// namedUnitFor returns the units type naming dimension d, if any.
func namedUnitFor(d Dim) (string, bool) {
	name, ok := dimToUnit[d]
	return name, ok
}

// baseDims lets //archlint:dim expressions spell raw base dimensions as
// well as named units types.
var baseDims = map[string]Dim{
	"time":   {Time: 1},
	"energy": {Energy: 1},
	"flop":   {Flop: 1},
	"byte":   {Byte: 1},
	"access": {Access: 1},
}

// ParseDimExpr parses the unit grammar of an //archlint:dim directive:
//
//	unit      = "any" | "dimensionless" | "1" | term { ("*" | "/") term } .
//	term      = name [ "^" int ] .
//	name      = units type ("Power") | base dimension ("energy") .
//
// It returns the dimension, whether the directive opts out of checking
// entirely ("any"), and whether the expression parsed.
func ParseDimExpr(s string) (d Dim, anyDim bool, ok bool) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return Dim{}, false, false
	case "any":
		return Dim{}, true, true
	case "dimensionless", "1":
		return Dim{}, false, true
	}
	// Walk term by term, applying the operator that precedes each.
	div := false
	for {
		i := strings.IndexAny(s, "*/")
		term := s
		if i >= 0 {
			term = s[:i]
		}
		td, tok := parseDimTerm(strings.TrimSpace(term))
		if !tok {
			return Dim{}, false, false
		}
		if div {
			d = d.Div(td)
		} else {
			d = d.Mul(td)
		}
		if i < 0 {
			return d, false, true
		}
		div = s[i] == '/'
		s = s[i+1:]
	}
}

// parseDimTerm parses one name[^exp] term.
func parseDimTerm(t string) (Dim, bool) {
	name, expStr, hasExp := strings.Cut(t, "^")
	name = strings.TrimSpace(name)
	d, ok := unitDims[name]
	if !ok {
		d, ok = baseDims[name]
	}
	if !ok || name == "" {
		return Dim{}, false
	}
	if !hasExp {
		return d, true
	}
	exp, err := strconv.Atoi(strings.TrimSpace(expStr))
	if err != nil || exp < -8 || exp > 8 {
		return Dim{}, false
	}
	out := Dim{}
	for i := 0; i < exp; i++ {
		out = out.Mul(d)
	}
	for i := 0; i > exp; i-- {
		out = out.Div(d)
	}
	return out, true
}
