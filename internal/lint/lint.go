// Package lint is archline's in-repo static-analysis framework: a
// stdlib-only (go/ast, go/parser, go/types, go/importer) analyzer driver
// with a small pluggable analyzer interface, inline suppression
// directives, JSON output, and a textual auto-fix engine.
//
// It exists because the unit-safety guarantees of internal/units — the
// compiler rejecting Time+Energy — evaporate at every raw float64(...)
// conversion, and because the paper-reproduction claims depend on
// deterministic, race-free bookkeeping. The analyzers here encode the
// correctness discipline of this codebase; `cmd/archlint` is the driver
// binary and `make check` wires it into the tier-1 verify.
//
// Suppression syntax: a finding on line N is suppressed by a directive
// comment on line N or on line N-1:
//
//	//archlint:ignore <analyzer> <reason>
//
// The reason is mandatory — a suppression without one is itself
// reported as a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as loaded.
	File string `json:"file"`
	// Line and Col are 1-based source coordinates.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the finding.
	Message string `json:"message"`
	// Suppressed reports whether an //archlint:ignore directive covers
	// this finding; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// TextEdit is a byte-range replacement produced by an analyzer in fix
// mode. Offsets are file offsets within File.
type TextEdit struct {
	File     string
	Start    int // byte offset of the first replaced byte
	End      int // byte offset one past the last replaced byte
	NewText  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Src maps a file path to its raw bytes (for fix-mode edits and
	// source extraction).
	Src map[string][]byte
	// Dep resolves an already-loaded module-local package by import
	// path (nil outside a driver Run, or when the package was never
	// imported). Cross-function analyzers use it to read the ASTs of
	// dependency packages — every package the current one imports is
	// guaranteed loaded, because the loader type-checks from source.
	Dep func(path string) *Package
	// Facts is a scratch store shared by all packages and analyzers of
	// one Run. Analyzers key it with unexported types of their own so
	// cross-package caches (e.g. dimcheck's function summaries) survive
	// from one package's pass to the next.
	Facts map[any]any

	analyzer *Analyzer
	diags    *[]Diagnostic
	edits    *[]TextEdit
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Edit records a fix-mode text edit replacing [start, end) with text.
func (p *Pass) Edit(start, end token.Pos, text string) {
	sp, ep := p.Fset.Position(start), p.Fset.Position(end)
	if sp.Filename != ep.Filename {
		return
	}
	*p.edits = append(*p.edits, TextEdit{
		File:     sp.Filename,
		Start:    sp.Offset,
		End:      ep.Offset,
		NewText:  text,
		Analyzer: p.analyzer.Name,
	})
}

// ExprText returns the source text of the node, or the empty string if
// the file bytes are unavailable.
func (p *Pass) ExprText(n ast.Node) string {
	sp, ep := p.Fset.Position(n.Pos()), p.Fset.Position(n.End())
	src, ok := p.Src[sp.Filename]
	if !ok || sp.Filename != ep.Filename || ep.Offset > len(src) {
		return ""
	}
	return string(src[sp.Offset:ep.Offset])
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one static check.
type Analyzer struct {
	// Name is the identifier used in flags, output, and suppression
	// directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and reports diagnostics via the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitSafety,
		DimCheck,
		FloatCmp,
		MapOrder,
		ErrDrop,
		CtxGoroutine,
		SimSeed,
		SpanClose,
	}
}

// ByName resolves an analyzer by its name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// directive is one parsed //archlint:ignore comment.
type directive struct {
	line     int
	col      int
	analyzer string
	reason   string
	// used records whether the directive suppressed at least one
	// diagnostic in this run; an unused directive for an active
	// analyzer is itself reported, so suppressions cannot outlive the
	// findings they were written for.
	used bool
}

const directivePrefix = "archlint:ignore"

// collectDirectives parses every //archlint:ignore comment in the
// files. Malformed directives (no analyzer, unknown analyzer, or a
// missing reason) are reported as diagnostics so suppressions cannot
// silently rot.
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[string][]directive, []Diagnostic) {
	byFile := map[string][]directive{}
	var bad []Diagnostic
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "archlint",
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" {
					report(pos, "malformed //archlint:ignore: missing analyzer name")
					continue
				}
				if _, ok := ByName(name); !ok {
					report(pos, fmt.Sprintf("//archlint:ignore names unknown analyzer %q", name))
					continue
				}
				if reason == "" {
					report(pos, fmt.Sprintf("//archlint:ignore %s: missing reason", name))
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], directive{
					line:     pos.Line,
					col:      pos.Column,
					analyzer: name,
					reason:   reason,
				})
			}
		}
	}
	return byFile, bad
}

// applySuppressions marks diagnostics covered by a directive on the
// same line or the line immediately above, and marks the directives it
// consumed so staleDirectives can report the leftovers.
func applySuppressions(diags []Diagnostic, byFile map[string][]directive) {
	for i := range diags {
		d := &diags[i]
		for j := range byFile[d.File] {
			dir := &byFile[d.File][j]
			if dir.analyzer != d.Analyzer {
				continue
			}
			if dir.line == d.Line || dir.line == d.Line-1 {
				d.Suppressed = true
				d.Reason = dir.reason
				dir.used = true
				break
			}
		}
	}
}

// staleDirectives reports every well-formed //archlint:ignore that
// suppressed nothing, restricted to analyzers that actually ran — a
// directive for a disabled analyzer is dormant, not stale. Stale
// suppressions are the rot this check prevents: as analyzers sharpen,
// an ignore can outlive its finding and then silently swallow the next
// real one on that line.
func staleDirectives(byFile map[string][]directive, active map[string]bool) []Diagnostic {
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, file := range files {
		for _, dir := range byFile[file] {
			if dir.used || !active[dir.analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "archlint",
				File:     file,
				Line:     dir.line,
				Col:      dir.col,
				Message: fmt.Sprintf("stale //archlint:ignore %s: no %s finding on this or the next line; delete the directive",
					dir.analyzer, dir.analyzer),
			})
		}
	}
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
