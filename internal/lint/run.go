package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config selects what Run analyzes and how.
type Config struct {
	// Dir is the working directory patterns are resolved against
	// (defaults to the process working directory).
	Dir string
	// Patterns are package patterns ("./...", "internal/model").
	Patterns []string
	// Enable restricts the suite to the named analyzers (empty = all).
	Enable []string
	// Disable removes the named analyzers from the suite.
	Disable []string
	// Fix applies analyzer-provided text edits to the source files.
	Fix bool
}

// Result is the outcome of one Run.
type Result struct {
	// Diags holds every diagnostic, sorted by position, including
	// suppressed ones.
	Diags []Diagnostic
	// FixedFiles lists files rewritten in fix mode.
	FixedFiles []string
}

// Unsuppressed returns the diagnostics not covered by a directive.
func (r *Result) Unsuppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Summary returns per-analyzer (total, suppressed) counts in a stable
// analyzer order.
func (r *Result) Summary() []SummaryRow {
	counts := map[string]*SummaryRow{}
	var order []string
	for _, d := range r.Diags {
		row, ok := counts[d.Analyzer]
		if !ok {
			row = &SummaryRow{Analyzer: d.Analyzer}
			counts[d.Analyzer] = row
			order = append(order, d.Analyzer)
		}
		row.Total++
		if d.Suppressed {
			row.Suppressed++
		}
	}
	sort.Strings(order)
	out := make([]SummaryRow, 0, len(order))
	for _, name := range order {
		out = append(out, *counts[name])
	}
	return out
}

// SummaryRow is one analyzer's finding counts.
type SummaryRow struct {
	Analyzer   string `json:"analyzer"`
	Total      int    `json:"total"`
	Suppressed int    `json:"suppressed"`
}

// selectAnalyzers applies Enable/Disable to the full suite.
func selectAnalyzers(cfg Config) ([]*Analyzer, error) {
	suite := All()
	if len(cfg.Enable) > 0 {
		var picked []*Analyzer
		for _, name := range cfg.Enable {
			a, ok := ByName(name)
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if len(cfg.Disable) > 0 {
		drop := map[string]bool{}
		for _, name := range cfg.Disable {
			if _, ok := ByName(name); !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*Analyzer
		for _, a := range suite {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		suite = kept
	}
	return suite, nil
}

// Run loads every package matching cfg.Patterns and applies the
// selected analyzers. Diagnostics come back relative to cfg.Dir when
// possible.
func Run(cfg Config) (*Result, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	suite, err := selectAnalyzers(cfg)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	active := map[string]bool{}
	for _, a := range suite {
		active[a.Name] = true
	}
	facts := map[any]any{}
	var diags []Diagnostic
	var edits []TextEdit
	for _, pkgDir := range dirs {
		pkg, err := loader.Load(pkgDir)
		if err != nil {
			return nil, err
		}
		byFile, bad := collectDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)
		var pkgDiags []Diagnostic
		for _, a := range suite {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Src:      pkg.Src,
				Dep:      loader.Loaded,
				Facts:    facts,
				analyzer: a,
				diags:    &pkgDiags,
				edits:    &edits,
			}
			a.Run(pass)
		}
		applySuppressions(pkgDiags, byFile)
		diags = append(diags, pkgDiags...)
		diags = append(diags, staleDirectives(byFile, active)...)
	}
	res := &Result{}
	for _, d := range diags {
		if rel, err := filepath.Rel(dir, d.File); err == nil && !strings.HasPrefix(rel, "..") {
			d.File = rel
		}
		res.Diags = append(res.Diags, d)
	}
	sortDiagnostics(res.Diags)
	if cfg.Fix {
		fixed, err := applyEdits(edits)
		if err != nil {
			return nil, err
		}
		res.FixedFiles = fixed
	}
	return res, nil
}

// applyEdits rewrites files with the collected edits, later offsets
// first so earlier offsets stay valid. Overlapping edits in one file
// are rejected.
func applyEdits(edits []TextEdit) ([]string, error) {
	byFile := map[string][]TextEdit{}
	for _, e := range edits {
		byFile[e.File] = append(byFile[e.File], e)
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var fixed []string
	for _, f := range files {
		es := byFile[f]
		sort.Slice(es, func(i, j int) bool { return es[i].Start > es[j].Start })
		for i := 1; i < len(es); i++ {
			if es[i].End > es[i-1].Start {
				return nil, fmt.Errorf("lint: overlapping fixes in %s", f)
			}
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, e := range es {
			if e.Start < 0 || e.End > len(data) || e.Start > e.End {
				return nil, fmt.Errorf("lint: fix out of range in %s", f)
			}
			data = append(data[:e.Start], append([]byte(e.NewText), data[e.End:]...)...)
		}
		if err := os.WriteFile(f, data, 0o644); err != nil {
			return nil, err
		}
		fixed = append(fixed, f)
	}
	return fixed, nil
}
