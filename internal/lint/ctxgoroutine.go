package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxGoroutine enforces goroutine hygiene at `go` statements:
//
//  1. a goroutine's function literal must not capture an enclosing
//     loop's iteration variable — even with per-iteration loop
//     variables (go >= 1.22) the capture hides the dataflow; pass the
//     value as an argument instead; and
//  2. the launching function must contain a visible join — a
//     WaitGroup-style Wait call, a channel receive, a select, or a
//     range over a channel — so goroutines cannot silently outlive the
//     work that spawned them (the worker pools in internal/fit and
//     internal/experiments are the reference shape).
var CtxGoroutine = &Analyzer{
	Name: "ctxgoroutine",
	Doc:  "flags goroutines that capture loop variables or lack a visible join",
	Run:  runCtxGoroutine,
}

func runCtxGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, parents, g)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, parents map[ast.Node]ast.Node, g *ast.GoStmt) {
	// Collect loop variables of loops between the go statement and its
	// enclosing function, and find that function's body.
	loopVars := map[types.Object]bool{}
	var body *ast.BlockStmt
	for n := parents[ast.Node(g)]; n != nil; n = parents[n] {
		switch s := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.FuncDecl:
			body = s.Body
		case *ast.FuncLit:
			body = s.Body
		}
		if body != nil {
			break
		}
	}

	// Rule 1: loop-variable capture inside the goroutine's closure.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && len(loopVars) > 0 {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil && loopVars[obj] {
				pass.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it as an argument", id.Name)
				loopVars[obj] = false // one report per variable
			}
			return true
		})
	}

	// Rule 2: the launching function needs a visible join.
	if body != nil && !hasJoin(pass, body) {
		pass.Reportf(g.Pos(), "goroutine has no visible join (WaitGroup Wait, channel receive, or select) in the enclosing function")
	}
}

// hasJoin reports whether body contains a join construct, ignoring the
// bodies of launched goroutines themselves (a receive inside the
// spawned closure does not join it from the launcher's side).
func hasJoin(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
