package archline

import (
	"math"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	// The facade exposes the twelve platforms.
	if got := len(Platforms()); got != 12 {
		t.Fatalf("Platforms() = %d entries, want 12", got)
	}
	if PlatformsByEfficiency()[0].ID != GTXTitan {
		t.Error("most efficient platform should be the GTX Titan")
	}
	if _, err := GetPlatform("bogus"); err == nil {
		t.Error("unknown platform should error")
	}
	titan := MustPlatform(GTXTitan)
	if titan.Name != "GTX Titan" {
		t.Errorf("got %q", titan.Name)
	}
}

func TestNewMachine(t *testing.T) {
	m, err := NewMachine(2e12, 200e9, 40e-12, 300e-12, 50, 120)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(m.TimeBalance())-10) > 1e-9 {
		t.Errorf("balance = %v, want 10", m.TimeBalance())
	}
	if _, err := NewMachine(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("zero peak should error")
	}
}

func TestFacadeScenarioFlow(t *testing.T) {
	titan := MustPlatform(GTXTitan).Single
	mali := MustPlatform(ArndaleGPU).Single

	k, err := PowerMatch(titan, mali)
	if err != nil || k != 47 {
		t.Errorf("PowerMatch = %d, %v; want 47", k, err)
	}
	cmp, err := CompareBlocks("titan", titan, "mali", mali, 0.125, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AggCount != 47 {
		t.Errorf("AggCount = %d", cmp.AggCount)
	}
	x, err := Crossover(titan, mali, MetricFlopsPerJoule, 0.125, 256)
	if err != nil {
		t.Fatal(err)
	}
	if x <= 0 {
		t.Error("crossover should be positive")
	}
	curves, err := ThrottleSweep(titan, []float64{1, 0.5}, LogSpace(0.25, 128, 8))
	if err != nil || len(curves) != 2 {
		t.Fatalf("ThrottleSweep: %v", err)
	}
	pb, err := PowerBound(titan, mali, float64(titan.PeakAvgPower())/2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if pb.SmallCount != 23 {
		t.Errorf("SmallCount = %d, want 23", pb.SmallCount)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	titan := MustPlatform(GTXTitan)
	spmv, err := SpMV(1<<20, 1<<24, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceWorkload(spmv, titan.Single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Time <= 0 || pl.Energy <= 0 {
		t.Error("placement should have positive costs")
	}
	if pl.Regime != MemoryBound {
		t.Errorf("SpMV regime %v, want memory-bound", pl.Regime)
	}
	for _, mk := range []func() (Workload, error){
		func() (Workload, error) { return FFT(1<<20, 4, 1<<20) },
		func() (Workload, error) { return MatMul(512, 4, 1<<20) },
		func() (Workload, error) { return Stencil7(64, 4, 1<<20) },
		func() (Workload, error) { return MergeSort(1<<20, 4, 1<<20) },
		func() (Workload, error) { return StreamTriad(1<<20, 4) },
		func() (Workload, error) { return Dot(1<<20, 4) },
	} {
		w, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if w.Intensity() <= 0 {
			t.Errorf("%s: non-positive intensity", w.Name)
		}
	}
	bfs, err := BFS(1<<16, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceWorkload(bfs, titan.Single, titan.Rand); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	titan := MustPlatform(GTXTitan)
	s := NewSimulator(titan, SimOptions{Seed: 5, Noiseless: true})
	m, err := s.Measure(Kernel{
		Name: "api", FlopsPerWord: 16, WorkingSet: 64 << 20, Passes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Intensity != 4 {
		t.Errorf("intensity = %v, want 4", m.Intensity)
	}
	suite, err := RunSuite(titan, SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Measurements) == 0 {
		t.Error("suite should produce measurements")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers in -short mode")
	}
	opts := ExperimentOptions{Seed: 3, SweepPoints: 12}
	if _, err := ReproduceFig1(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := ReproduceThrottle(ThrottlePower); err != nil {
		t.Fatal(err)
	}
	sc, err := Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ConstPower.OverHalf != 7 {
		t.Errorf("OverHalf = %d, want 7", sc.ConstPower.OverHalf)
	}
}
