// Command archline regenerates the paper's tables and figures from the
// simulated measurement pipeline. Run `archline -h` for the full command
// list; the implementation lives in internal/cli so it is unit tested.
package main

import (
	"os"

	"archline/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
