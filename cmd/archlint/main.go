// Command archlint runs archline's in-repo static-analysis suite: eight
// analyzers (unitsafety, dimcheck, floatcmp, maporder, errdrop,
// ctxgoroutine, simseed, spanclose) that enforce the unit-safety,
// dimensional-consistency, determinism, concurrency-hygiene, and
// span-lifecycle discipline the energy-model reproduction depends on.
// It is built entirely on the standard library's go/ast, go/parser,
// go/types, and go/importer packages.
//
// Usage:
//
//	archlint [-json] [-all] [-fix] [-summary] [-enable a,b] [-disable c] [packages]
//
// Findings are suppressed inline with a mandatory reason:
//
//	//archlint:ignore <analyzer> <reason>
//
// on the offending line or the line above. Exit status: 0 when every
// finding is fixed or suppressed, 1 when unsuppressed findings remain,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"archline/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array")
		all     = flag.Bool("all", false, "also list suppressed diagnostics")
		fix     = flag.Bool("fix", false, "apply analyzer-provided fixes to the source files")
		summary = flag.Bool("summary", false, "print per-analyzer finding counts to stderr")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		list    = flag.Bool("analyzers", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := lint.Config{
		Patterns: flag.Args(),
		Enable:   splitList(*enable),
		Disable:  splitList(*disable),
		Fix:      *fix,
	}
	res, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "archlint:", err)
		os.Exit(2)
	}

	shown := res.Unsuppressed()
	if *all {
		shown = res.Diags
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []lint.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintln(os.Stderr, "archlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range shown {
			suffix := ""
			if d.Suppressed {
				suffix = " (suppressed: " + d.Reason + ")"
			}
			fmt.Println(d.String() + suffix)
		}
	}
	for _, f := range res.FixedFiles {
		fmt.Fprintln(os.Stderr, "archlint: fixed", f)
	}
	if *summary {
		rows := res.Summary()
		if len(rows) == 0 {
			fmt.Fprintln(os.Stderr, "archlint: no findings")
		}
		for _, row := range rows {
			fmt.Fprintf(os.Stderr, "archlint: %-14s %3d finding(s), %d suppressed\n",
				row.Analyzer, row.Total, row.Suppressed)
		}
	}
	if len(res.Unsuppressed()) > 0 {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
