// Command powsim runs one kernel on a simulated platform and dumps the
// PowerMon 2-style multi-rail sample trace as CSV — the raw
// time-stamped voltage/current stream the paper's measurement
// infrastructure produced (fig. 3).
//
// Usage:
//
//	powsim [-platform gtx-titan] [-fpw 64] [-ws 64Mi] [-seed 42] > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"archline/internal/machine"
	"archline/internal/sim"
	"archline/internal/stats"
	"archline/internal/trace"
	"archline/internal/units"
)

func main() {
	var (
		platform = flag.String("platform", "gtx-titan", "platform ID")
		fpw      = flag.Float64("fpw", 64, "flops per word (intensity knob)")
		ws       = flag.String("ws", "64Mi", "working set, e.g. 16Ki, 8Mi, 1Gi")
		passes   = flag.Int("passes", 0, "passes over the working set (0 = auto ~0.25s)")
		seed     = flag.Uint64("seed", 42, "noise seed")
		chase    = flag.Bool("chase", false, "run the pointer-chase kernel instead")
		double   = flag.Bool("double", false, "double precision")
		phases   = flag.Bool("phases", false, "run a 3-phase sequence and detect phases from the trace")
	)
	flag.Parse()
	var err error
	if *phases {
		err = runPhases(machine.ID(*platform), *seed)
	} else {
		err = run(machine.ID(*platform), *fpw, *ws, *passes, *seed, *chase, *double)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "powsim:", err)
		os.Exit(1)
	}
}

// runPhases records a memory-bound, compute-bound, and pointer-chase
// phase back to back and recovers the phase structure from the sampled
// trace — the trace-analysis workflow of internal/trace.
func runPhases(id machine.ID, seed uint64) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	s := sim.New(plat, sim.Options{Seed: seed})
	kernels := []sim.Kernel{
		{Name: "memory-bound", Precision: sim.Single, FlopsPerWord: 0.5,
			WorkingSet: units.MiB(64), Passes: passCount(plat, 0.5)},
		{Name: "compute-bound", Precision: sim.Single, FlopsPerWord: 4096,
			WorkingSet: units.MiB(64), Passes: passCount(plat, 4096)},
	}
	if plat.Rand != nil {
		accesses := units.MiB(256).Count() / plat.Rand.Line.Count()
		per := accesses / float64(plat.Rand.Rate)
		n := int(0.25/per) + 1
		kernels = append(kernels, sim.Kernel{
			Name: "pointer-chase", Precision: sim.Single, Pattern: sim.ChasePattern,
			WorkingSet: units.MiB(256), Passes: n,
		})
	}
	seq, tr, err := s.MeasureSequence(kernels)
	if err != nil {
		return err
	}
	pts, err := trace.FromTrace(tr)
	if err != nil {
		return err
	}
	detected, err := trace.DetectPhases(trace.MovingAverage(pts, 9), 16, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d-phase sequence, %s total, %d samples\n\n",
		plat.Name, len(seq.Runs), units.FormatTime(seq.Total), tr.SampleCount())
	fmt.Println("ground truth:")
	for i, run := range seq.Runs {
		fmt.Printf("  %d. %-14s %8s  %s\n", i+1, run.Kernel.Name,
			units.FormatTime(run.TrueTime),
			units.FormatPower(units.Power(plat.Single.Pi1.Watts()+run.TrueDyn.Watts())))
	}
	fmt.Println("detected from the trace:")
	for i, ph := range detected {
		fmt.Printf("  %d. %8s - %8s  %s  (%d samples)\n", i+1,
			units.FormatTime(ph.Start), units.FormatTime(ph.End),
			units.FormatPower(ph.AvgPower), ph.Samples)
	}
	return nil
}

// passCount sizes a streaming kernel to ~0.3 s on the platform.
func passCount(plat *machine.Platform, fpw float64) int {
	p := plat.Single
	words := units.MiB(64).Count() / 4
	per := fpw * words * float64(p.TauFlop)
	if mem := units.MiB(64).Count() * float64(p.TauMem); mem > per {
		per = mem
	}
	n := int(0.3/per) + 1
	return n
}

func run(id machine.ID, fpw float64, wsSpec string, passes int, seed uint64, chase, double bool) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	wsBytes, err := units.ParseSize(wsSpec)
	if err != nil {
		return err
	}
	k := sim.Kernel{
		Name:         "powsim",
		FlopsPerWord: fpw,
		WorkingSet:   wsBytes,
		Passes:       passes,
	}
	if chase {
		k.Pattern = sim.ChasePattern
	}
	if double {
		k.Precision = sim.Double
	}
	s := sim.New(plat, sim.Options{Seed: seed})
	if k.Passes <= 0 {
		k.Passes = 1
		res, err := s.Run(k)
		if err != nil {
			return err
		}
		if per := res.TrueTime.Seconds(); per < 0.25 {
			k.Passes = int(0.25/per) + 1
		}
	}
	res, err := s.Run(k)
	if err != nil {
		return err
	}
	meter := sim.MeterFor(plat)
	trace, err := meter.Record(res.Signal, res.TrueTime,
		stats.NewStream(seed, "powsim-meter"))
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "powsim: %s on %s: %d samples over %s, avg %s, energy %s\n",
		k.Pattern, plat.Name, trace.SampleCount(),
		units.FormatTime(trace.Duration),
		units.FormatPower(trace.AvgPower()),
		units.FormatEnergy(trace.Energy()))
	return nil
}
