// Command mbench runs the paper's microbenchmark suite on one simulated
// platform and prints the raw measurement tuples — the (W, Q, time,
// energy, power) records the fitting pipeline consumes.
//
// Usage:
//
//	mbench [-platform gtx-titan] [-seed 42] [-points 25] [-noiseless] [-csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/report"
	"archline/internal/sim"
	"archline/internal/units"
)

func main() {
	var (
		platform  = flag.String("platform", "gtx-titan", "platform ID (see 'archline list')")
		seed      = flag.Uint64("seed", 42, "simulation noise seed")
		points    = flag.Int("points", 25, "intensity sweep points")
		noiseless = flag.Bool("noiseless", false, "disable measurement noise")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()
	if err := run(machine.ID(*platform), *seed, *points, *noiseless, *asCSV); err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		os.Exit(1)
	}
}

func run(id machine.ID, seed uint64, points int, noiseless, asCSV bool) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	cfg := microbench.DefaultConfig()
	cfg.SweepPoints = points
	res, err := microbench.Run(plat, cfg, sim.Options{Seed: seed, Noiseless: noiseless})
	if err != nil {
		return err
	}
	if asCSV {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		if err := w.Write([]string{"kernel", "precision", "pattern", "level",
			"W_flops", "Q_bytes", "intensity", "time_s", "energy_J", "power_W"}); err != nil {
			return err
		}
		for _, m := range res.Measurements {
			rec := []string{
				m.Kernel, m.Precision.String(), m.Pattern.String(), m.Level.String(),
				strconv.FormatFloat(m.W.Count(), 'g', -1, 64),
				strconv.FormatFloat(m.Q.Count(), 'g', -1, 64),
				strconv.FormatFloat(m.Intensity.Ratio(), 'g', -1, 64),
				strconv.FormatFloat(m.Time.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(m.Energy.Joules(), 'g', -1, 64),
				strconv.FormatFloat(m.AvgPower.Watts(), 'g', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("%s microbenchmark suite (%d kernels, idle %s)\n\n",
		plat.Name, len(res.Measurements), units.FormatPower(res.IdlePower))
	tb := &report.Table{
		Headers: []string{"kernel", "prec", "level", "intensity", "time", "energy", "power", "flop/s", "GB/s"},
	}
	for _, m := range res.Measurements {
		rate, bw := "-", "-"
		if m.W > 0 {
			rate = units.FormatFlopRate(m.W.Rate(m.Time))
		}
		if m.Q > 0 {
			bw = units.FormatByteRate(m.Q.Rate(m.Time))
		}
		tb.AddRow(m.Kernel, m.Precision.String(), m.Level.String(),
			units.FormatIntensity(m.Intensity),
			units.FormatTime(m.Time),
			units.FormatEnergy(m.Energy),
			units.FormatPower(m.AvgPower),
			rate, bw)
	}
	fmt.Println(tb.Render())
	return nil
}
