// Command archlined runs the energy-roofline query daemon: an HTTP/JSON
// API over the model, platform database, and what-if scenario engines.
// It is `archline serve` packaged as a standalone binary, so every
// serve flag applies, including -trace-log (NDJSON request spans),
// -pprof (mount /debug/pprof/), and -chaos.
package main

import (
	"os"

	"archline/internal/cli"
)

func main() {
	os.Exit(cli.Main(append([]string{"serve"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
