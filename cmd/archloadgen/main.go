// Command archloadgen drives synthetic traffic against a running
// archlined daemon and reports throughput, response classification, and
// latency quantiles. It is the repo's committed load harness: CI boots a
// daemon, runs a short archloadgen pass, and gates the build on the
// budget file (scripts/load_budget.json), so a latency regression fails
// the same way a broken test does.
//
// Usage:
//
//	archloadgen -base http://127.0.0.1:8080 [-duration 5s] [-workers 4]
//	            [-rate 0] [-seed 42] [-mix query=45,roofline=15,...]
//	            [-max-requests 0] [-timeout 5s]
//	            [-json] [-budget file.json] [-check-agg]
//
// The mix names weights for: query, roofline, compare, whatif, batch,
// platforms, fit, upload (unnamed ops keep their default; fit and
// upload default to 0 — fit jobs cost daemon CPU for seconds, and
// uploads need a daemon running with -data-dir). -rate 0 is closed-loop
// (workers go as fast as the daemon allows); -rate N paces an open loop
// at N req/s. The request stream is deterministic under -seed.
//
// With -budget, the report is checked against the file's limits
// (max_p99_ms, min_rps, max_server_errors, max_transport_errors) and
// violations exit 1. With -check-agg, /metrics is scraped after the run
// and the aggregation pipeline's health contract is enforced too:
// per-platform counters present, at least one interval flush, flush age
// within max_flush_age_s.
//
// Exit status: 0 in budget, 1 budget violation or failed run, 2 usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"archline/internal/loadgen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archloadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base     = fs.String("base", "", "archlined base URL (required)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load")
		workers  = fs.Int("workers", 4, "closed-loop concurrency")
		rate     = fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
		seed     = fs.Uint64("seed", 42, "request-stream seed (same seed, same stream)")
		mixFlag  = fs.String("mix", "", "op weights, e.g. query=45,roofline=15 (unnamed ops keep defaults)")
		maxReqs  = fs.Int("max-requests", 0, "stop after this many requests (0 = duration-bound)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		asJSON   = fs.Bool("json", false, "write the report as JSON to stdout (table goes to stderr)")
		budgetF  = fs.String("budget", "", "budget file to enforce; violations exit 1")
		checkAgg = fs.Bool("check-agg", false, "scrape /metrics after the run and enforce aggregation health")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *base == "" || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "archloadgen:", err)
		return 2
	}
	var budget loadgen.Budget
	if *budgetF != "" {
		raw, err := os.ReadFile(*budgetF)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "archloadgen:", err)
			return 2
		}
		if err := json.Unmarshal(raw, &budget); err != nil {
			_, _ = fmt.Fprintf(stderr, "archloadgen: budget %s: %v\n", *budgetF, err)
			return 2
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *base,
		Duration:    *duration,
		Workers:     *workers,
		Rate:        *rate,
		Seed:        *seed,
		Mix:         mix,
		Timeout:     *timeout,
		MaxRequests: *maxReqs,
	})
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "archloadgen:", err)
		return 1
	}
	if *asJSON {
		rep.Render(stderr)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			_, _ = fmt.Fprintln(stderr, "archloadgen: encoding report:", err)
			return 1
		}
	} else {
		rep.Render(stdout)
	}

	violations := []string{}
	if *budgetF != "" {
		violations = append(violations, budget.Check(rep)...)
	}
	if *checkAgg {
		exp, err := scrape(*base + "/metrics")
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "archloadgen: scraping /metrics:", err)
			return 1
		}
		violations = append(violations, budget.CheckAgg(exp)...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			_, _ = fmt.Fprintln(stderr, "archloadgen: BUDGET VIOLATION:", v)
		}
		return 1
	}
	if *budgetF != "" || *checkAgg {
		_, _ = fmt.Fprintln(stderr, "archloadgen: within budget")
	}
	return 0
}

// scrape fetches a text exposition.
func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}
