// Package archline is a Go reproduction of "Algorithmic Time, Energy,
// and Power on Candidate HPC Compute Building Blocks" (Choi, Dukhan,
// Liu, Vuduc; IPDPS 2014): the capped energy-roofline model, the
// twelve-platform Table I study, the microbenchmark + PowerMon
// measurement substrate (simulated), the model-fitting pipeline, and the
// power-throttling/bounding what-if analyses.
//
// This root package is the public API facade. The typical flow:
//
//	titan := archline.MustPlatform(archline.GTXTitan)
//	m := titan.Single                             // fitted model params
//	p := m.AvgPowerAt(4)                          // eq. (7) at 4 flop:Byte
//	eff := m.FlopsPerJouleAt(4)                   // energy efficiency
//	cmp, _ := archline.CompareBlocks("Titan", m,
//	    "Arndale GPU", archline.MustPlatform(archline.ArndaleGPU).Single,
//	    0.125, 256, 64)                           // fig. 1 analysis
//
// Everything heavier — simulating the microbenchmark suite, fitting
// parameters from measurements, regenerating the paper's tables and
// figures — is reachable through the re-exported subsystem entry points
// below and through the archline CLI (cmd/archline).
package archline

import (
	"context"
	"io"

	"archline/internal/cluster"
	"archline/internal/experiments"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/scenario"
	"archline/internal/server"
	"archline/internal/sim"
	"archline/internal/units"
	"archline/internal/workload"
)

// Machine is the capped energy-roofline machine model of section III:
// tau_flop, tau_mem, eps_flop, eps_mem, pi_1 (constant power), and
// DeltaPi (the usable power cap). Its methods evaluate eqs. (1)-(7).
type Machine = model.Params

// Hierarchy extends Machine with per-cache-level memory costs.
type Hierarchy = model.Hierarchy

// LevelParams is one memory level's (tau, eps) pair.
type LevelParams = model.LevelParams

// RandomAccess is the pointer-chase access mode (rate, energy/access).
type RandomAccess = model.RandomAccessParams

// Regime classifies an intensity as memory-, cap-, or compute-bound.
type Regime = model.Regime

// The three regimes.
const (
	MemoryBound  = model.MemoryBound
	CapBound     = model.CapBound
	ComputeBound = model.ComputeBound
)

// Metric selects a comparable quantity for crossover searches.
type Metric = model.Metric

// The comparable metrics of fig. 1.
const (
	MetricFlopRate      = model.MetricFlopRate
	MetricFlopsPerJoule = model.MetricFlopsPerJoule
	MetricAvgPower      = model.MetricAvgPower
)

// Platform is one Table I row: identification, vendor peaks, sustained
// peaks, fitted parameters, cache levels, and random-access data.
type Platform = machine.Platform

// PlatformID names one of the twelve platforms.
type PlatformID = machine.ID

// The twelve Table I platforms.
const (
	DesktopCPU = machine.DesktopCPU
	NUCCPU     = machine.NUCCPU
	NUCGPU     = machine.NUCGPU
	APUCPU     = machine.APUCPU
	APUGPU     = machine.APUGPU
	GTX580     = machine.GTX580
	GTX680     = machine.GTX680
	GTXTitan   = machine.GTXTitan
	XeonPhi    = machine.XeonPhi
	PandaBoard = machine.PandaBoard
	ArndaleCPU = machine.ArndaleCPU
	ArndaleGPU = machine.ArndaleGPU
)

// Platforms returns all twelve platforms in Table I order.
func Platforms() []*Platform { return machine.All() }

// PlatformsByEfficiency returns the platforms in fig. 5 panel order
// (decreasing peak Gflop/J).
func PlatformsByEfficiency() []*Platform { return machine.ByPeakEfficiency() }

// GetPlatform looks a platform up by ID.
func GetPlatform(id PlatformID) (*Platform, error) { return machine.ByID(id) }

// MustPlatform is GetPlatform for static IDs; it panics on unknown IDs.
func MustPlatform(id PlatformID) *Platform { return machine.MustByID(id) }

// NewMachine builds a Machine from headline numbers: peak compute
// (flop/s), peak bandwidth (B/s), per-op energies (J/flop, J/B),
// constant power, and usable power cap (W).
func NewMachine(peakFlops, peakBW, epsFlop, epsMem, pi1, deltaPi float64) (Machine, error) {
	m := Machine{
		TauFlop: units.FlopRate(peakFlops).Inverse(),
		TauMem:  units.ByteRate(peakBW).Inverse(),
		EpsFlop: units.EnergyPerFlop(epsFlop),
		EpsMem:  units.EnergyPerByte(epsMem),
		Pi1:     units.Power(pi1),
		DeltaPi: units.Power(deltaPi),
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// Intensity is a flop:Byte operational intensity.
type Intensity = units.Intensity

// Flops counts floating-point operations (the model's W).
type Flops = units.Flops

// Bytes counts memory traffic (the model's Q).
type Bytes = units.Bytes

// Time is seconds, Energy joules, Power watts.
type (
	Time   = units.Time
	Energy = units.Energy
	Power  = units.Power
)

// LogSpace returns n log-spaced intensities over [lo, hi], the sweep grid
// of every figure.
func LogSpace(lo, hi Intensity, n int) []Intensity { return model.LogSpace(lo, hi, n) }

// Crossover finds an intensity where machines a and b tie on metric m.
func Crossover(a, b Machine, m Metric, lo, hi Intensity) (Intensity, error) {
	return model.Crossover(a, b, m, lo, hi)
}

// PowerMatch returns how many copies of small match big's peak power
// (fig. 1's "47 x Arndale GPU").
func PowerMatch(big, small Machine) (int, error) { return model.PowerMatch(big, small) }

// BlockComparison is the fig. 1 building-block analysis.
type BlockComparison = scenario.BlockComparison

// CompareBlocks compares building block a against b and b's
// power-matched aggregate over [lo, hi] with n grid points.
func CompareBlocks(aName string, a Machine, bName string, b Machine,
	lo, hi Intensity, n int) (*BlockComparison, error) {
	return scenario.CompareBlocks(aName, a, bName, b, lo, hi, n)
}

// ThrottleCurve is one cap setting's sweep (figs. 6-7).
type ThrottleCurve = scenario.ThrottleCurve

// ThrottleSweep evaluates a machine under reduced power caps.
func ThrottleSweep(m Machine, fracs []float64, grid []Intensity) ([]ThrottleCurve, error) {
	return scenario.ThrottleSweep(m, fracs, grid)
}

// PowerBoundResult is the section V-D big-node-vs-small-assembly study.
type PowerBoundResult = scenario.PowerBoundResult

// PowerBound throttles big to a watt budget and compares it against an
// assembly of small machines at the same budget.
func PowerBound(big, small Machine, budgetWatts float64, i Intensity) (*PowerBoundResult, error) {
	return scenario.PowerBound(big, small, units.Power(budgetWatts), i)
}

// Workload is an abstract algorithm's (W, Q) cost profile.
type Workload = workload.Profile

// Placement is a workload evaluated on a machine.
type Placement = workload.Placement

// PlaceWorkload evaluates a workload on a machine (rand may be nil for
// purely streaming workloads).
func PlaceWorkload(p Workload, m Machine, rand *RandomAccess) (Placement, error) {
	return workload.Place(p, m, rand)
}

// Re-exported workload constructors; see internal/workload for the
// traffic models.
var (
	SpMV        = workload.SpMV
	FFT         = workload.FFT
	MatMul      = workload.MatMul
	Stencil7    = workload.Stencil7
	MergeSort   = workload.MergeSort
	BFS         = workload.BFS
	StreamTriad = workload.StreamTriad
	Dot         = workload.Dot
	AXPY        = workload.AXPY
)

// App is a composed application: phases executed for a number of
// iterations (e.g. a CG solve).
type App = workload.App

// AppPlacement is an application evaluated phase-by-phase on a machine.
type AppPlacement = workload.AppPlacement

// Composed-application constructors and evaluator.
var (
	CG       = workload.CG
	Jacobi3D = workload.Jacobi3D
	FFTConv  = workload.FFTConv
	PlaceApp = workload.PlaceApp
)

// DVFS is the dynamic voltage/frequency scaling extension of the model.
type DVFS = model.DVFS

// Cluster is N nodes joined by an interconnection network — the
// machinery behind the paper's "ignores the network" caveat.
type Cluster = cluster.Cluster

// ClusterNetwork describes the interconnect attached to every node.
type ClusterNetwork = cluster.Network

// ClusterStep is one bulk-synchronous superstep on a cluster.
type ClusterStep = cluster.Step

// Communication patterns for cluster steps.
const (
	Embarrassing = cluster.Embarrassing
	Halo         = cluster.Halo
	AllReduce    = cluster.AllReduce
	AllToAll     = cluster.AllToAll
)

// Reference interconnects.
var (
	EthernetLowPower = cluster.EthernetLowPower
	InfinibandFDR    = cluster.InfinibandFDR
)

// PlatformFromJSON and PlatformToJSON read and write platform
// descriptions in Table I's units, so users can model their own
// hardware (see also archline's -platform-file flag).
var (
	PlatformFromJSON = machine.FromJSON
	PlatformToJSON   = machine.ToJSON
)

// Simulator runs microbenchmark kernels on a simulated platform.
type Simulator = sim.Simulator

// SimOptions tune the simulator (seed, noise, cache-sim fidelity).
type SimOptions = sim.Options

// Kernel is a microbenchmark specification.
type Kernel = sim.Kernel

// Measurement is one lab-bench (W, Q, time, energy, power) tuple.
type Measurement = sim.Measurement

// NewSimulator builds a simulator for a platform.
func NewSimulator(p *Platform, opts SimOptions) *Simulator { return sim.New(p, opts) }

// SuiteResult is a full microbenchmark-suite run on one platform.
type SuiteResult = microbench.Result

// RunSuite executes the paper's full microbenchmark suite on a platform.
func RunSuite(p *Platform, opts SimOptions) (*SuiteResult, error) {
	return microbench.Run(p, microbench.DefaultConfig(), opts)
}

// ExperimentOptions configure the table/figure reproductions.
type ExperimentOptions = experiments.Options

// Experiment drivers: each regenerates one table or figure of the paper.
var (
	ReproduceTableI = experiments.TableI
	ReproduceFig1   = experiments.Fig1
	ReproduceFig4   = experiments.Fig4
	ReproduceFig5   = experiments.Fig5
	Scenarios       = experiments.Scenarios
)

// Throttle quantities for the figs. 6/7 reproduction.
const (
	ThrottlePower = experiments.ThrottlePower // fig. 6
	ThrottlePerf  = experiments.ThrottlePerf  // fig. 7a
	ThrottleEff   = experiments.ThrottleEff   // fig. 7b
)

// ReproduceThrottle regenerates fig. 6, 7a, or 7b.
func ReproduceThrottle(q experiments.ThrottleQuantity) (*experiments.ThrottleResult, error) {
	return experiments.Throttle(q)
}

// HeteroMachine, HeteroSplit: heterogeneous pools of building blocks and
// the divisible-work partitions across them.
type (
	HeteroMachine = scenario.HeteroMachine
	HeteroSplit   = scenario.HeteroSplit
)

// SplitForTime partitions w flops at intensity i across a heterogeneous
// pool to minimize the makespan.
func SplitForTime(pool []HeteroMachine, w Flops, i Intensity) (*HeteroSplit, error) {
	return scenario.SplitForTime(pool, w, i)
}

// SplitForEnergy partitions w flops at intensity i to minimize energy
// under a deadline.
func SplitForEnergy(pool []HeteroMachine, w Flops, i Intensity, deadline Time) (*HeteroSplit, error) {
	return scenario.SplitForEnergy(pool, w, i, deadline)
}

// ServerConfig tunes archlined, the HTTP/JSON query daemon over the
// model, platform database, and scenario engines (see internal/server
// and cmd/archlined).
type ServerConfig = server.Config

// Server is an embeddable archlined instance; Handler() exposes it for
// mounting into an existing mux, Run() serves it standalone.
type Server = server.Server

// NewServer builds an archlined instance (zero config fields take
// defaults).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// RunServer serves archlined on cfg.Addr until ctx is cancelled, then
// drains gracefully.
func RunServer(ctx context.Context, cfg ServerConfig, stdout, stderr io.Writer) error {
	return server.Run(ctx, cfg, stdout, stderr)
}
