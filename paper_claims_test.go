package archline

// paper_claims_test.go is the reproduction checklist: one test per
// headline claim in the paper, each asserting this repository's pipeline
// reproduces it. EXPERIMENTS.md carries the full quantitative record;
// this file is the executable summary.

import (
	"math"
	"testing"

	"archline/internal/experiments"
	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/scenario"
	"archline/internal/units"
	"archline/internal/workload"
)

// Claim (abstract): "a dozen such platforms" — twelve distinct platforms
// across x86, ARM, GPU, and hybrid processors.
func TestClaimTwelvePlatforms(t *testing.T) {
	ps := machine.All()
	if len(ps) != 12 {
		t.Fatalf("%d platforms", len(ps))
	}
	classes := map[machine.Class]int{}
	gpus := 0
	for _, p := range ps {
		classes[p.Class]++
		if p.IsGPU {
			gpus++
		}
	}
	if len(classes) < 3 || gpus < 4 {
		t.Errorf("platform diversity: classes=%v gpus=%d", classes, gpus)
	}
}

// Claim (section I): GTX Titan ~5 Tflop/s single-precision vendor peak,
// Arndale board under 10 W; 47 Arndale GPUs power-match one Titan.
func TestClaimFig1Setup(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan)
	if v := float64(titan.Vendor.Single); math.Abs(v-4.99e12) > 0.01e12 {
		t.Errorf("Titan vendor peak %v", v)
	}
	mali := machine.MustByID(machine.ArndaleGPU)
	if p := float64(mali.Single.PeakAvgPower()); p >= 10 {
		t.Errorf("Arndale GPU peak power %v W, paper says board < 10 W", p)
	}
	k, err := model.PowerMatch(titan.Single, mali.Single)
	if err != nil || k != 47 {
		t.Errorf("power match %d, %v", k, err)
	}
}

// Claim (section I): SpMV is roughly 0.25-0.5 flop:Byte in single
// precision and a large FFT 2-4 flop:Byte.
func TestClaimWorkloadIntensities(t *testing.T) {
	spmv, err := workload.SpMV(1<<22, 1<<26, workload.WordSingle)
	if err != nil {
		t.Fatal(err)
	}
	if i := float64(spmv.Intensity()); i < 0.15 || i > 0.5 {
		t.Errorf("SpMV intensity %v", i)
	}
	fft, err := workload.FFT(1<<26, workload.WordSingle, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if i := float64(fft.Intensity()); i < 2 || i > 6 {
		t.Errorf("FFT intensity %v", i)
	}
}

// Claim (fig. 1): the 47-GPU aggregate yields up to ~1.6x for
// bandwidth-bound codes at under half the Titan's peak, with the energy
// crossover at a few flop:Byte.
func TestClaimFig1Findings(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan).Single
	mali := machine.MustByID(machine.ArndaleGPU).Single
	bc, err := scenario.CompareBlocks("t", titan, "a", mali, 0.125, 256, 96)
	if err != nil {
		t.Fatal(err)
	}
	if bc.MaxAggSpeedup < 1.4 || bc.MaxAggSpeedup > 1.9 {
		t.Errorf("aggregate speedup %v (paper: up to 1.6x)", bc.MaxAggSpeedup)
	}
	if bc.AggPeakFraction >= 0.5 {
		t.Errorf("aggregate peak fraction %v (paper: < 1/2)", bc.AggPeakFraction)
	}
	if x := float64(bc.AggPerfCrossover); x < 1 || x > 16 {
		t.Errorf("crossover %v (paper: ~4 flop:Byte)", x)
	}
}

// Claim (fig. 4): the capped model improves the error distribution on
// every platform, with a majority statistically significant.
func TestClaimCappedModelImproves(t *testing.T) {
	res, err := experiments.Fig4(experiments.Options{Seed: 31, SweepPoints: 20, Replicates: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Platforms {
		if !p.Improved() {
			t.Errorf("%s: capped model did not improve", p.Platform.Name)
		}
	}
	if n := res.SignificantCount(); n < 5 || n > 10 {
		t.Errorf("significant on %d platforms (paper: 7)", n)
	}
}

// Claim (fig. 5 order): GTX Titan is the most energy-efficient platform
// at ~16 Gflop/J; Desktop CPU and APU CPU trail at ~620-650 Mflop/J.
func TestClaimEfficiencyOrdering(t *testing.T) {
	order := machine.ByPeakEfficiency()
	if order[0].ID != machine.GTXTitan {
		t.Errorf("leader %s", order[0].ID)
	}
	lead := float64(order[0].Single.PeakFlopsPerJoule())
	if math.Abs(lead-16e9) > 1e9 {
		t.Errorf("Titan peak %v flop/J", lead)
	}
	tail := order[len(order)-1]
	if v := float64(tail.Single.PeakFlopsPerJoule()); v > 0.7e9 {
		t.Errorf("weakest platform %s at %v flop/J", tail.Name, v)
	}
}

// Claim (section V-B): eps_L1 <= eps_L2 on every system; eps_rand at
// least an order of magnitude above eps_mem; the Phi's random access is
// an order of magnitude cheaper than everyone else's.
func TestClaimMemoryHierarchyCosts(t *testing.T) {
	phi := machine.MustByID(machine.XeonPhi)
	for _, p := range machine.All() {
		if p.L1 != nil && p.L2 != nil && p.L1.Eps > p.L2.Eps {
			t.Errorf("%s: eps_L1 > eps_L2", p.Name)
		}
		if p.Rand != nil && float64(p.Rand.Eps) < 10*float64(p.Single.EpsMem) {
			t.Errorf("%s: eps_rand not an order of magnitude above eps_mem", p.Name)
		}
		if p.Rand != nil && p.ID != machine.XeonPhi &&
			float64(p.Rand.Eps) < 8*float64(phi.Rand.Eps) {
			t.Errorf("%s: should cost ~10x the Phi per random access", p.Name)
		}
	}
}

// Claim (section V-B worked example): total streaming energy inverts the
// raw eps_mem ordering — Arndale GPU 671 pJ/B, Titan 782 pJ/B, Phi
// 1.13 nJ/B.
func TestClaimStreamingInversion(t *testing.T) {
	want := map[machine.ID]float64{
		machine.ArndaleGPU: 671e-12,
		machine.GTXTitan:   782e-12,
		machine.XeonPhi:    1.13e-9,
	}
	for id, v := range want {
		got := float64(machine.MustByID(id).Single.StreamEnergyPerByte())
		if math.Abs(got-v) > 0.02*v {
			t.Errorf("%s: %v J/B, paper %v", id, got, v)
		}
	}
}

// Claim (section V-C): pi_1 exceeds half the maximum power on 7 of 12
// platforms; the share correlates with peak efficiency at about -0.6;
// within-platform power varies by less than 2x.
func TestClaimConstantPower(t *testing.T) {
	st, err := scenario.ConstantPowerAnalysis(machine.All(), 0.125, 512)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverHalf != 7 {
		t.Errorf("over half on %d platforms", st.OverHalf)
	}
	if st.Correlation > -0.4 || st.Correlation < -0.8 {
		t.Errorf("correlation %v", st.Correlation)
	}
	for id, r := range st.PowerRange {
		if r > 2.1 {
			t.Errorf("%s: power range %v", id, r)
		}
	}
}

// Claim (section V-D): at half a Titan's node power, the throttled Titan
// runs at ~0.31x at I = 0.25 while 23 Arndale GPUs in the same envelope
// run ~2.6-2.8x faster than it.
func TestClaimPowerBounding(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan).Single
	mali := machine.MustByID(machine.ArndaleGPU).Single
	res, err := scenario.PowerBound(titan, mali,
		units.Power(float64(titan.PeakAvgPower())/2), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BigPerfRatio-0.31) > 0.05 {
		t.Errorf("throttled ratio %v", res.BigPerfRatio)
	}
	if res.SmallCount != 23 {
		t.Errorf("small count %d", res.SmallCount)
	}
	if res.SmallVsBig < 2.2 || res.SmallVsBig > 3.2 {
		t.Errorf("assembly advantage %v", res.SmallVsBig)
	}
}

// Claim (conclusions): the Xeon Phi's random-access energy is "at least
// one order of magnitude less energy per access than any other
// platform, suggesting its utility on highly irregular data processing
// workloads". The marginal (dynamic) cost bears that out — and, in a
// twist the paper's own section V-B predicts, charging pi_1 inverts the
// total-energy ranking exactly as it does for streaming: the Phi's
// 180 W constant power hands the total-energy BFS win to the low-pi_1
// mobile parts.
func TestClaimPhiIrregularWorkloads(t *testing.T) {
	phi := machine.MustByID(machine.XeonPhi)
	// Marginal cost: the Phi's eps_rand is the floor by a wide margin.
	for _, p := range machine.All() {
		if p.Rand == nil || p.ID == machine.XeonPhi {
			continue
		}
		if float64(p.Rand.Eps) < 8*float64(phi.Rand.Eps) {
			t.Errorf("%s: eps_rand %v should be ~10x the Phi's %v",
				p.Name, p.Rand.Eps, phi.Rand.Eps)
		}
	}
	// Total cost: pi_1 inverts the ranking, the section V-B effect.
	bestTotal, bestName := 0.0, ""
	var phiTotal float64
	for _, p := range machine.All() {
		if p.Rand == nil {
			continue
		}
		bfs, err := workload.BFS(1<<20, 1<<26, float64(p.Rand.Line))
		if err != nil {
			t.Fatal(err)
		}
		pl, err := workload.Place(bfs, p.Single, p.Rand)
		if err != nil {
			t.Fatal(err)
		}
		perJ := float64(bfs.W) / float64(pl.Energy)
		if perJ > bestTotal {
			bestTotal, bestName = perJ, p.Name
		}
		if p.ID == machine.XeonPhi {
			phiTotal = perJ
		}
	}
	if bestName == "Xeon Phi" {
		t.Error("premise changed: pi_1 used to cost the Phi the total-energy win")
	}
	// The Phi still places competitively despite an order-of-magnitude
	// higher pi_1 than the mobile winner.
	if phiTotal < bestTotal/3 {
		t.Errorf("Phi total edges/J %v too far below winner %v", phiTotal, bestTotal)
	}
}

// Claim (fig. 6 reading): reducing DeltaPi by k reduces overall power by
// less than k, and the Arndale GPU has the most headroom while Xeon
// Phi/APUs have the least.
func TestClaimThrottlingHeadroom(t *testing.T) {
	reductions := map[machine.ID]float64{}
	for _, p := range machine.All() {
		r, err := scenario.PowerReduction(p.Single, 0.125)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0.125 || r >= 1 {
			t.Errorf("%s: reduction ratio %v outside (1/8, 1)", p.Name, r)
		}
		reductions[p.ID] = r
	}
	if reductions[machine.ArndaleGPU] >= reductions[machine.XeonPhi] {
		t.Error("Arndale GPU should shed the most power under capping")
	}
	if reductions[machine.APUCPU] <= reductions[machine.GTXTitan] {
		t.Error("the APU CPU should shed the least")
	}
}
