// benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark trajectories can be
// committed, diffed, and charted without re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./scripts/benchjson > BENCH.json
//	... | go run ./scripts/benchjson -prev BENCH_old.json > BENCH.json
//
// Each benchmark line becomes one record: the benchmark name (with the
// trailing -GOMAXPROCS token split off), the iteration count, and every
// "value unit" pair the line reports — ns/op, B/op, allocs/op, and any
// custom b.ReportMetric units. Context lines (goos, goarch, pkg, cpu)
// are attached to the records that follow them. A "host" block records
// the converting machine's Go version, GOMAXPROCS, and CPU count so two
// committed snapshots are comparable at a glance — benchjson runs on
// the same host as the bench, so its runtime answers describe the run.
//
// With -prev pointing at the previous snapshot, each record whose
// (package, name) appears there additionally carries an "allocs_delta"
// block — the previous allocs/op and the signed change — so the
// committed snapshot is its own trajectory: a reviewer reads the
// regression (or the win) straight off the diff without opening the
// old file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// allocsDelta relates a record's allocs/op to the previous snapshot's.
type allocsDelta struct {
	Prev  float64 `json:"prev"`
	Delta float64 `json:"delta"`
}

// record is one parsed benchmark result line.
type record struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// AllocsDelta is filled from -prev when the same benchmark exists in
	// the previous snapshot and both runs report allocs/op.
	AllocsDelta *allocsDelta `json:"allocs_delta,omitempty"`
}

// hostInfo describes the machine that ran the benchmarks, captured at
// conversion time (the bench pipeline runs benchjson on the same host).
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// document is the full parsed run.
type document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Host       hostInfo `json:"host"`
	Benchmarks []record `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line.
// Returns ok=false for lines that are not benchmark results.
func parseLine(pkg, line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Package: pkg, Name: fields[0], Iterations: iters,
		Metrics: make(map[string]float64)}
	// The -P suffix is GOMAXPROCS, not part of the benchmark's identity.
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.Procs = rec.Name[:i], p
		}
	}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

// loadPrevAllocs reads a previous snapshot and indexes its allocs/op
// values by (package, name). Procs is deliberately not part of the key:
// snapshots from this pipeline run one GOMAXPROCS setting, and keying
// loosely keeps deltas working if that setting changes between hosts.
func loadPrevAllocs(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev document
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]float64, len(prev.Benchmarks))
	for _, rec := range prev.Benchmarks {
		if v, ok := rec.Metrics["allocs/op"]; ok {
			out[rec.Package+"\x00"+rec.Name] = v
		}
	}
	return out, nil
}

func run(prevPath string) error {
	doc := document{
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Benchmarks: []record{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if rec, ok := parseLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	if prevPath != "" {
		prevAllocs, err := loadPrevAllocs(prevPath)
		if err != nil {
			return err
		}
		for i := range doc.Benchmarks {
			rec := &doc.Benchmarks[i]
			cur, ok := rec.Metrics["allocs/op"]
			if !ok {
				continue
			}
			if p, ok := prevAllocs[rec.Package+"\x00"+rec.Name]; ok {
				rec.AllocsDelta = &allocsDelta{Prev: p, Delta: cur - p}
			}
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
		return err
	}
	return nil
}

func main() {
	prev := flag.String("prev", "", "previous snapshot JSON to compute allocs/op deltas against")
	flag.Parse()
	if err := run(*prev); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
