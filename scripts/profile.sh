#!/bin/sh
# profile.sh — capture a CPU profile from a live archlined.
#
# Boots the daemon on an ephemeral port with -pprof, drives a little
# query load at it so the profile has something to show, fetches
# /debug/pprof/profile, and writes the result to $OUT (default
# cpu.pprof in the repo root). Inspect it with `go tool pprof`.
#
#   OUT=/tmp/archlined.pprof SECS=10 ./scripts/profile.sh
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-cpu.pprof}
SECS=${SECS:-5}

tmpdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "profile: building archlined"
go build -o "$tmpdir/archlined" ./cmd/archlined

"$tmpdir/archlined" -addr 127.0.0.1:0 -pprof >"$tmpdir/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/daemon.log")
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "profile: archlined never announced its address" >&2
    cat "$tmpdir/daemon.log" >&2
    exit 1
fi
echo "profile: daemon at $base, sampling CPU for ${SECS}s"

# Background load: distinct sweeps so each request evaluates the model
# instead of hitting the response cache.
(
    i=0
    while kill -0 "$daemon_pid" 2>/dev/null; do
        i=$((i + 1))
        curl -fsS "$base/v1/platforms/gtx-titan/roofline?points=$((16 + i % 48))" \
            >/dev/null 2>&1 || true
    done
) &
load_pid=$!

curl -fsS -o "$OUT" "$base/debug/pprof/profile?seconds=$SECS"

kill "$load_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""

echo "profile: wrote $OUT ($(wc -c <"$OUT") bytes)"
echo "profile: inspect with: go tool pprof $OUT"
