// smoke is the CI smoke probe for archlined: pointed at a running
// daemon, it checks /healthz, the shape of one roofline sweep, response
// determinism (two identical requests must return identical bytes), the
// metrics exposition (including line-level format validity),
// X-Request-Id echo, the /v1/batch fan-out (duplicate items identical,
// bad items failing in-slot), the NDJSON sweep stream protocol, and the
// async fit-job lifecycle (submit, poll to terminal, grade, cancel
// mid-flight). With -chaos it instead asserts graceful
// degradation against a daemon running with chaos middleware enabled:
// every failure must carry the JSON error envelope (no naked 5xx),
// every 429/503 must carry Retry-After, and liveness must survive. It
// exits nonzero on the first failure; see scripts/ci.sh for the harness
// that boots the daemon around it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"
)

func main() {
	base := flag.String("base", "", "archlined base URL (required)")
	chaos := flag.Bool("chaos", false, "probe a chaos-mode daemon for graceful degradation")
	crashCommit := flag.Bool("crash-commit", false,
		"commit one registry upload, print its ETag, and exit (the harness kills the daemon next)")
	verifyRecover := flag.Bool("verify-recover", false,
		"assert a restarted daemon recovered the -crash-commit upload")
	wantETag := flag.String("etag", "", "with -verify-recover: the ETag the recovered upload must carry")
	wantQuarantined := flag.Int("want-quarantined", -1,
		"with -verify-recover: exact archlined_registry_quarantined_blobs_total (negative skips)")
	flag.Parse()
	if *base == "" {
		log.Fatal("smoke: -base is required")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	if *chaos {
		chaosProbe(client, *base)
		fmt.Println("smoke: chaos OK")
		return
	}
	if *crashCommit {
		etag := crashCommitProbe(client, *base)
		// The harness greps this sentinel, then SIGKILLs the daemon: the
		// acknowledged upload must survive the crash.
		fmt.Printf("smoke: committed %s\n", etag)
		return
	}
	if *verifyRecover {
		verifyRecoverProbe(client, *base, *wantETag, *wantQuarantined)
		fmt.Println("smoke: recovery OK")
		return
	}

	// Liveness.
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(client, *base+"/healthz", &health); err != nil {
		log.Fatalf("smoke: healthz: %v", err)
	}
	if health.Status != "ok" {
		log.Fatalf("smoke: healthz status = %q, want ok", health.Status)
	}

	// One sweep, with the JSON shape asserted.
	const sweepURL = "/v1/platforms/gtx-titan/roofline?points=17"
	body1, err := getBody(client, *base+sweepURL)
	if err != nil {
		log.Fatalf("smoke: roofline: %v", err)
	}
	var sweep struct {
		PlatformID string `json:"platform_id"`
		Points     []struct {
			Intensity   float64 `json:"intensity"`
			Regime      string  `json:"regime"`
			FlopsPerSec float64 `json:"flops_per_sec"`
			AvgPowerW   float64 `json:"avg_power_w"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body1, &sweep); err != nil {
		log.Fatalf("smoke: roofline JSON: %v", err)
	}
	if sweep.PlatformID != "gtx-titan" || len(sweep.Points) != 17 {
		log.Fatalf("smoke: roofline shape wrong: id=%q points=%d", sweep.PlatformID, len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if p.Intensity <= 0 || p.FlopsPerSec <= 0 || p.AvgPowerW <= 0 || p.Regime == "" {
			log.Fatalf("smoke: degenerate roofline point: %+v", p)
		}
	}

	// Determinism: the repeat must be byte-identical (and served from
	// the response cache).
	body2, err := getBody(client, *base+sweepURL)
	if err != nil {
		log.Fatalf("smoke: roofline repeat: %v", err)
	}
	if string(body1) != string(body2) {
		log.Fatal("smoke: identical requests returned different bytes")
	}

	// Metrics counted all of the above.
	metrics, err := getBody(client, *base+"/metrics")
	if err != nil {
		log.Fatalf("smoke: metrics: %v", err)
	}
	for _, want := range []string{
		"archlined_requests_total",
		"archlined_cache_hits_total 1",
		"archlined_model_evals_total 1",
		"# HELP archlined_requests_total",
		"# TYPE archlined_request_duration_seconds histogram",
		// The aggregation stage: both roofline requests above counted
		// against gtx-titan (the response cache sits below the counter),
		// and rendering /metrics drains the aggregator, so the
		// per-platform series and the distinct-platforms gauge are exact
		// here regardless of interval-flusher timing.
		`archlined_platform_queries_total{platform="gtx-titan"} 2`,
		"archlined_distinct_platforms_queried 1",
		`archlined_agg_series{family="requests"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("smoke: metrics missing %q in:\n%s", want, metrics)
		}
	}
	checkExpositionFormat(string(metrics))
	checkRequestIDEcho(client, *base)

	// The batch, streaming, job, and registry probes run after the
	// metrics assertions above: those pin exact counter values (one
	// eval, one cache hit) and anything evaluated here would shift them.
	checkBatch(client, *base)
	checkSweepStream(client, *base)
	checkJobLifecycle(client, *base)
	checkRegistry(client, *base)

	fmt.Println("smoke: OK")
}

// smokePlatform is a minimal valid platform description for the
// registry probes; the gflops knob changes its model outputs.
func smokePlatform(id string, gflops float64) string {
	return fmt.Sprintf(`{
		"id": %q, "name": "Smoke %s", "class": "mini", "cache_line_bytes": 64,
		"vendor_single_gflops": %g, "vendor_mem_gbs": 20, "idle_w": 3,
		"sustained_single_gflops": %g, "sustained_mem_gbs": 10,
		"eps_s_pj_per_flop": 40, "eps_mem_pj_per_byte": 300,
		"pi1_w": 2, "delta_pi_w": 4
	}`, id, id, gflops*1.25, gflops)
}

// uploadPlatform POSTs one platform description and returns the
// response ETag, asserting the expected status and outcome.
func uploadPlatform(client *http.Client, base, body string, wantStatus int, wantOutcome string) string {
	resp, err := client.Post(base+"/v1/platforms", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("smoke: upload: %v", err)
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatalf("smoke: upload read: %v", err)
	}
	if resp.StatusCode != wantStatus {
		log.Fatalf("smoke: upload status %d, want %d: %s", resp.StatusCode, wantStatus, out)
	}
	var ack struct {
		ETag    string `json:"etag"`
		Outcome string `json:"outcome"`
	}
	if err := json.Unmarshal(out, &ack); err != nil || ack.ETag == "" {
		log.Fatalf("smoke: upload ack %q: %v", out, err)
	}
	if ack.Outcome != wantOutcome {
		log.Fatalf("smoke: upload outcome %q, want %q", ack.Outcome, wantOutcome)
	}
	return ack.ETag
}

// checkRegistry probes the persistent platform registry end to end:
// upload, query through the uploaded entry, re-upload with different
// content and require the query answer to change (the version-keyed
// cache must never serve the old response), revalidate with
// If-None-Match, and confirm the registry metric families counted it
// all. Leaves the registry clean (the probe platform is deleted).
func checkRegistry(client *http.Client, base string) {
	const query = `{"platform_id":"smoke-board","intensity":1000}`
	etag := uploadPlatform(client, base, smokePlatform("smoke-board", 8), http.StatusCreated, "created")

	queryBody := func() string {
		resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(query))
		if err != nil {
			log.Fatalf("smoke: registry query: %v", err)
		}
		out, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Fatalf("smoke: registry query status %d: %s (%v)", resp.StatusCode, out, err)
		}
		return string(out)
	}
	before := queryBody()
	if again := queryBody(); again != before {
		log.Fatal("smoke: identical registry queries returned different bytes")
	}

	// Re-upload with changed content; the next query must see it.
	etag2 := uploadPlatform(client, base, smokePlatform("smoke-board", 16), http.StatusOK, "updated")
	if etag2 == etag {
		log.Fatal("smoke: re-upload kept the old ETag")
	}
	if after := queryBody(); after == before {
		log.Fatal("smoke: query served a stale response after re-upload")
	}

	// Conditional GET: the current ETag revalidates to 304.
	req, err := http.NewRequest(http.MethodGet, base+"/v1/platforms/smoke-board", nil)
	if err != nil {
		log.Fatalf("smoke: registry revalidate: %v", err)
	}
	req.Header.Set("If-None-Match", etag2)
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("smoke: registry revalidate: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		log.Fatalf("smoke: revalidation status %d, want 304", resp.StatusCode)
	}

	metrics, err := getBody(client, base+"/metrics")
	if err != nil {
		log.Fatalf("smoke: metrics after registry probe: %v", err)
	}
	for _, want := range []string{
		"archlined_registry_uploads_total 2",
		"archlined_registry_invalidations_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("smoke: metrics missing %q after registry probe", want)
		}
	}

	del, err := http.NewRequest(http.MethodDelete, base+"/v1/platforms/smoke-board", nil)
	if err != nil {
		log.Fatalf("smoke: registry delete: %v", err)
	}
	dresp, err := client.Do(del)
	if err != nil {
		log.Fatalf("smoke: registry delete: %v", err)
	}
	_, _ = io.Copy(io.Discard, dresp.Body)
	_ = dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		log.Fatalf("smoke: registry delete status %d, want 204", dresp.StatusCode)
	}
}

// crashCommitProbe uploads one platform and returns its ETag. The
// harness SIGKILLs the daemon right after the sentinel prints, so the
// acknowledged write must already be durable on disk.
func crashCommitProbe(client *http.Client, base string) string {
	return uploadPlatform(client, base, smokePlatform("crash-probe", 12), http.StatusCreated, "created")
}

// verifyRecoverProbe asserts that a daemon restarted over the same data
// directory recovered the -crash-commit upload: same ETag, still
// queryable, and (when the harness planted corruption) the recovery
// scan quarantined exactly the expected blobs.
func verifyRecoverProbe(client *http.Client, base, wantETag string, wantQuarantined int) {
	resp, err := client.Get(base + "/v1/platforms/crash-probe")
	if err != nil {
		log.Fatalf("smoke: recovery get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("smoke: recovery get status %d: %s (%v)", resp.StatusCode, body, err)
	}
	if wantETag != "" && resp.Header.Get("ETag") != wantETag {
		log.Fatalf("smoke: recovered ETag %q, want %q (content changed across the crash?)",
			resp.Header.Get("ETag"), wantETag)
	}
	qresp, err := client.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"platform_id":"crash-probe","intensity":1000}`))
	if err != nil {
		log.Fatalf("smoke: recovery query: %v", err)
	}
	qbody, err := io.ReadAll(qresp.Body)
	_ = qresp.Body.Close()
	if err != nil || qresp.StatusCode != http.StatusOK {
		log.Fatalf("smoke: recovery query status %d: %s (%v)", qresp.StatusCode, qbody, err)
	}
	if wantQuarantined >= 0 {
		metrics, err := getBody(client, base+"/metrics")
		if err != nil {
			log.Fatalf("smoke: recovery metrics: %v", err)
		}
		want := fmt.Sprintf("archlined_registry_quarantined_blobs_total %d", wantQuarantined)
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("smoke: metrics missing %q after recovery", want)
		}
	}
}

// jobInfo mirrors the wire shape of /v1/fit and /v1/jobs/{id} bodies.
type jobInfo struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result struct {
		Grade string `json:"grade"`
	} `json:"result"`
}

// checkJobLifecycle probes the async fit-job engine end to end: submit
// a clean-profile fit, poll it to a terminal state and assert the fit
// grade, then cancel a second, deliberately slower job mid-flight and
// require it to land canceled. Runs after the exact-counter metrics
// assertions so the job counters it checks are the only job activity.
func checkJobLifecycle(client *http.Client, base string) {
	// Job 1: a clean fit that must finish and grade well.
	job := submitFit(client, base, `{"platform_id":"gtx-titan","fault_profile":"none","seed":42}`)
	final := pollJob(client, base, job.ID, 2*time.Minute)
	if final.State != "done" {
		log.Fatalf("smoke: fit job %s ended %q (error %q), want done", job.ID, final.State, final.Error)
	}
	if g := final.Result.Grade; g != "A" && g != "B" {
		log.Fatalf("smoke: clean-profile fit graded %q, want A or B", g)
	}

	// Job 2: a deliberately heavy fit (max repeats and sweep points),
	// canceled right after submit; cancellation must land promptly.
	job2 := submitFit(client, base,
		`{"platform_id":"gtx-titan","fault_profile":"none","repeats":10,"sweep_points":256}`)
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+job2.ID, nil)
	if err != nil {
		log.Fatalf("smoke: job cancel: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("smoke: job cancel: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("smoke: job cancel status %d, want 200", resp.StatusCode)
	}
	final2 := pollJob(client, base, job2.ID, 30*time.Second)
	if final2.State != "canceled" {
		log.Fatalf("smoke: job %s ended %q after DELETE, want canceled", job2.ID, final2.State)
	}

	// The job counters saw exactly these two jobs.
	metrics, err := getBody(client, base+"/metrics")
	if err != nil {
		log.Fatalf("smoke: metrics after jobs: %v", err)
	}
	for _, want := range []string{
		"archlined_jobs_submitted_total 2",
		`archlined_jobs_finished_total{state="done"} 1`,
		`archlined_jobs_finished_total{state="canceled"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("smoke: metrics missing %q after job lifecycle", want)
		}
	}
}

// submitFit POSTs a fit request and returns the accepted job info.
func submitFit(client *http.Client, base, body string) jobInfo {
	resp, err := client.Post(base+"/v1/fit", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("smoke: fit submit: %v", err)
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatalf("smoke: fit submit read: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("smoke: fit submit status %d, want 202: %s", resp.StatusCode, out)
	}
	var job jobInfo
	if err := json.Unmarshal(out, &job); err != nil || job.ID == "" {
		log.Fatalf("smoke: fit submit JSON %q: %v", out, err)
	}
	return job
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(client *http.Client, base, id string, deadline time.Duration) jobInfo {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		var job jobInfo
		if err := getJSON(client, base+"/v1/jobs/"+id, &job); err != nil {
			log.Fatalf("smoke: job poll: %v", err)
		}
		switch job.State {
		case "done", "failed", "canceled":
			return job
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatalf("smoke: job %s did not reach a terminal state within %v", id, deadline)
	return jobInfo{}
}

// checkBatch probes POST /v1/batch: duplicate items must come back
// byte-identical (one shared evaluation) and an invalid item must fail
// alone, as an in-slot error envelope, without failing the batch.
func checkBatch(client *http.Client, base string) {
	const body = `{"items":[
		{"platform_id":"gtx-titan","intensity":2.5},
		{"platform_id":"gtx-titan","intensity":2.5},
		{"platform_id":"not-a-machine","intensity":2.5}
	]}`
	resp, err := client.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("smoke: batch: %v", err)
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatalf("smoke: batch read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("smoke: batch status %d: %s", resp.StatusCode, out)
	}
	var batch struct {
		Items   int               `json:"items"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(out, &batch); err != nil {
		log.Fatalf("smoke: batch JSON: %v in %s", err, out)
	}
	if batch.Items != 3 || len(batch.Results) != 3 {
		log.Fatalf("smoke: batch shape wrong: items=%d results=%d", batch.Items, len(batch.Results))
	}
	if string(batch.Results[0]) != string(batch.Results[1]) {
		log.Fatal("smoke: duplicate batch items returned different bytes")
	}
	var itemErr struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(batch.Results[2], &itemErr); err != nil || itemErr.Error.Code != "not_found" {
		log.Fatalf("smoke: bad item should carry a not_found envelope, got %s", batch.Results[2])
	}
}

// checkSweepStream probes POST /v1/sweep/stream: the NDJSON protocol
// must deliver a header, at least two chunks, and a well-formed done
// trailer accounting for every grid point.
func checkSweepStream(client *http.Client, base string) {
	const points = 2000
	body := fmt.Sprintf(`{"platform_id":"gtx-titan","points":%d}`, points)
	resp, err := client.Post(base+"/v1/sweep/stream", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("smoke: stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		log.Fatalf("smoke: stream status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		log.Fatalf("smoke: stream Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("smoke: stream read: %v", err)
	}
	if len(lines) < 4 {
		log.Fatalf("smoke: stream has %d lines, want header + >=2 chunks + trailer", len(lines))
	}
	var header struct {
		Points int `json:"points"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || header.Points != points {
		log.Fatalf("smoke: stream header %q: err=%v points=%d", lines[0], err, header.Points)
	}
	streamed := 0
	for i, line := range lines[1 : len(lines)-1] {
		var chunk struct {
			Seq    int               `json:"seq"`
			Points []json.RawMessage `json:"points"`
		}
		if err := json.Unmarshal([]byte(line), &chunk); err != nil {
			log.Fatalf("smoke: stream chunk line %d: %v", i+1, err)
		}
		if chunk.Seq != i {
			log.Fatalf("smoke: stream chunk %d has seq %d", i, chunk.Seq)
		}
		streamed += len(chunk.Points)
	}
	var trailer struct {
		Done   bool `json:"done"`
		Chunks int  `json:"chunks"`
		Points int  `json:"points"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		log.Fatalf("smoke: stream trailer %q: %v", lines[len(lines)-1], err)
	}
	if !trailer.Done || trailer.Points != points || trailer.Chunks != len(lines)-2 || streamed != points {
		log.Fatalf("smoke: stream trailer %+v with %d streamed points, want done with %d points in %d chunks",
			trailer, streamed, points, len(lines)-2)
	}
	if trailer.Chunks < 2 {
		log.Fatalf("smoke: stream delivered %d chunks, want at least 2 flushes", trailer.Chunks)
	}
}

// checkExpositionFormat walks every line of the /metrics body and
// requires it to be either a comment or a `name{labels} value` sample
// whose value parses as a float — the contract scrapers rely on.
func checkExpositionFormat(metrics string) {
	for n, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || name == "" {
			log.Fatalf("smoke: metrics line %d is not `name value`: %q", n+1, line)
		}
		if open := strings.IndexByte(name, '{'); open >= 0 && !strings.HasSuffix(name, "}") {
			log.Fatalf("smoke: metrics line %d has an unterminated label block: %q", n+1, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			log.Fatalf("smoke: metrics line %d value %q is not numeric: %q", n+1, value, line)
		}
	}
}

// checkRequestIDEcho asserts X-Request-Id propagation: a supplied ID
// must come back verbatim, and a request without one must be assigned
// a freshly minted ID.
func checkRequestIDEcho(client *http.Client, base string) {
	req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		log.Fatalf("smoke: request-id probe: %v", err)
	}
	req.Header.Set("X-Request-Id", "smoke-probe-1")
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("smoke: request-id probe: %v", err)
	}
	_ = resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "smoke-probe-1" {
		log.Fatalf("smoke: supplied X-Request-Id came back as %q, want verbatim echo", got)
	}

	resp2, err := client.Get(base + "/healthz")
	if err != nil {
		log.Fatalf("smoke: request-id mint probe: %v", err)
	}
	_ = resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got == "" {
		log.Fatal("smoke: request without X-Request-Id was not assigned one")
	}
}

// chaosProbe hammers a chaos-mode daemon and asserts graceful
// degradation: successes are well-formed, every non-2xx response
// carries the JSON error envelope with a matching status, shed/breaker
// responses carry Retry-After, and the exempt routes stay healthy.
func chaosProbe(client *http.Client, base string) {
	const requests = 200
	var oks, injected int
	for i := 0; i < requests; i++ {
		url := fmt.Sprintf("%s/v1/platforms/gtx-titan/roofline?points=%d", base, 5+i%13)
		resp, err := client.Get(url)
		if err != nil {
			log.Fatalf("smoke: chaos request %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			log.Fatalf("smoke: chaos request %d read: %v", i, err)
		}
		if resp.StatusCode == http.StatusOK {
			oks++
			continue
		}
		// Degradation contract: failures are structured, never naked.
		var env struct {
			Error struct {
				Code   string `json:"code"`
				Status int    `json:"status"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			log.Fatalf("smoke: chaos request %d: status %d without error envelope: %s",
				i, resp.StatusCode, body)
		}
		if env.Error.Status != resp.StatusCode {
			log.Fatalf("smoke: chaos request %d: envelope status %d != HTTP status %d",
				i, env.Error.Status, resp.StatusCode)
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				log.Fatalf("smoke: chaos request %d: %d without Retry-After", i, resp.StatusCode)
			}
		}
		injected++
	}
	if oks == 0 {
		log.Fatalf("smoke: chaos daemon served no successes in %d requests", requests)
	}

	// Liveness and observability are chaos-exempt and must still work.
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(client, base+"/healthz", &health); err != nil || health.Status != "ok" {
		log.Fatalf("smoke: healthz under chaos: %v (status %q)", err, health.Status)
	}
	metrics, err := getBody(client, base+"/metrics")
	if err != nil {
		log.Fatalf("smoke: metrics under chaos: %v", err)
	}
	if !strings.Contains(string(metrics), "archlined_chaos_injected_total") {
		log.Fatalf("smoke: metrics missing chaos counter:\n%s", metrics)
	}
	fmt.Printf("smoke: chaos probe: %d ok, %d degraded of %d requests\n", oks, injected, requests)
}

// getBody fetches url and returns the body, failing on non-200.
func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

// getJSON fetches url and decodes the JSON body into dst.
func getJSON(client *http.Client, url string, dst any) error {
	body, err := getBody(client, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, dst)
}
