// smoke is the CI smoke probe for archlined: pointed at a running
// daemon, it checks /healthz, the shape of one roofline sweep, response
// determinism (two identical requests must return identical bytes), and
// the metrics exposition. It exits nonzero on the first failure; see
// scripts/ci.sh for the harness that boots the daemon around it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

func main() {
	base := flag.String("base", "", "archlined base URL (required)")
	flag.Parse()
	if *base == "" {
		log.Fatal("smoke: -base is required")
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Liveness.
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(client, *base+"/healthz", &health); err != nil {
		log.Fatalf("smoke: healthz: %v", err)
	}
	if health.Status != "ok" {
		log.Fatalf("smoke: healthz status = %q, want ok", health.Status)
	}

	// One sweep, with the JSON shape asserted.
	const sweepURL = "/v1/platforms/gtx-titan/roofline?points=17"
	body1, err := getBody(client, *base+sweepURL)
	if err != nil {
		log.Fatalf("smoke: roofline: %v", err)
	}
	var sweep struct {
		PlatformID string `json:"platform_id"`
		Points     []struct {
			Intensity   float64 `json:"intensity"`
			Regime      string  `json:"regime"`
			FlopsPerSec float64 `json:"flops_per_sec"`
			AvgPowerW   float64 `json:"avg_power_w"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body1, &sweep); err != nil {
		log.Fatalf("smoke: roofline JSON: %v", err)
	}
	if sweep.PlatformID != "gtx-titan" || len(sweep.Points) != 17 {
		log.Fatalf("smoke: roofline shape wrong: id=%q points=%d", sweep.PlatformID, len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if p.Intensity <= 0 || p.FlopsPerSec <= 0 || p.AvgPowerW <= 0 || p.Regime == "" {
			log.Fatalf("smoke: degenerate roofline point: %+v", p)
		}
	}

	// Determinism: the repeat must be byte-identical (and served from
	// the response cache).
	body2, err := getBody(client, *base+sweepURL)
	if err != nil {
		log.Fatalf("smoke: roofline repeat: %v", err)
	}
	if string(body1) != string(body2) {
		log.Fatal("smoke: identical requests returned different bytes")
	}

	// Metrics counted all of the above.
	metrics, err := getBody(client, *base+"/metrics")
	if err != nil {
		log.Fatalf("smoke: metrics: %v", err)
	}
	for _, want := range []string{
		"archlined_requests_total",
		"archlined_cache_hits_total 1",
		"archlined_model_evals_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("smoke: metrics missing %q in:\n%s", want, metrics)
		}
	}

	fmt.Println("smoke: OK")
}

// getBody fetches url and returns the body, failing on non-200.
func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

// getJSON fetches url and decodes the JSON body into dst.
func getJSON(client *http.Client, url string, dst any) error {
	body, err := getBody(client, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, dst)
}
