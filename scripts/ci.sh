#!/bin/sh
# ci.sh — continuous-integration entry point.
#
# Same gate as scripts/check.sh but with test caching disabled
# (GOFLAGS=-count=1) so every run re-executes the suite, and with a
# per-analyzer summary of archlint findings (total and suppressed) on
# stderr. Exits nonzero if the build, vet, tests, or any unsuppressed
# archlint finding fails.
set -eu

cd "$(dirname "$0")/.."

export GOFLAGS=-count=1

echo "ci: go build"
go build ./...

echo "ci: go vet"
go vet ./...

echo "ci: go test -race"
go test -race ./...

echo "ci: archlint"
go run ./cmd/archlint -summary ./...

echo "ci: bench smoke"
# One iteration per benchmark: proves the trajectory harness runs end to
# end and benchjson parses its output, without CI-grade timings. The
# JSON lands in a temp dir so the committed BENCH_engine.json snapshot
# is only refreshed by a deliberate `make bench`.
bench_tmp=$(mktemp -d)
BENCHTIME=1x ./scripts/bench.sh "$bench_tmp/bench.json" >/dev/null
grep -q '"name": "BenchmarkSuiteRun/workers=1"' "$bench_tmp/bench.json" || {
    echo "ci: bench.json is missing the suite-run trajectory" >&2
    exit 1
}

echo "ci: bench gate"
# The smoke run's snapshot doubles as the regression gate input: the
# committed allocs/op ceilings (and, on >=4-CPU hosts, the parallel
# speedup floor) in scripts/bench_budget.json must hold even at one
# iteration per benchmark.
./scripts/benchgate.sh "$bench_tmp/bench.json"
rm -rf "$bench_tmp"

echo "ci: archlined smoke test"
# Boot the daemon on an ephemeral port, probe it over HTTP, then send
# SIGTERM and require a clean drain within 5 seconds.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/archlined" ./cmd/archlined
# Two job workers and a small queue so the smoke probe's job-lifecycle
# leg exercises the async fit engine with the same knobs ops would set;
# a data directory so the registry probe's uploads have durable storage.
"$tmpdir/archlined" -addr 127.0.0.1:0 -job-workers 2 -job-queue 4 -job-ttl 1m \
    -data-dir "$tmpdir/data" \
    >"$tmpdir/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/daemon.log")
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "ci: archlined never announced its address" >&2
    cat "$tmpdir/daemon.log" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi

go run ./scripts/smoke -base "$base"

echo "ci: archloadgen load smoke"
# A short deterministic load pass against the same daemon, gated on the
# committed budget: nonzero throughput, no unexpected 5xx or transport
# errors, and (-check-agg) the aggregation pipeline's health contract —
# per-platform query counters materialized in /metrics and the interval
# flusher alive and recent. Runs after the smoke probe because smoke
# pins exact counter values that load traffic would shift.
go build -o "$tmpdir/archloadgen" ./cmd/archloadgen
"$tmpdir/archloadgen" -base "$base" -duration 2s -seed 42 -json \
    -budget scripts/load_budget.json -check-agg >"$tmpdir/loadgen.json"
grep -q '"requests"' "$tmpdir/loadgen.json" || {
    echo "ci: archloadgen emitted no JSON report" >&2
    exit 1
}

kill -TERM "$daemon_pid"
# Clean drain within 5 s: a watchdog hard-kills on overrun, which makes
# the daemon exit nonzero and fails the gate below.
( sleep 5; kill -9 "$daemon_pid" 2>/dev/null ) &
watchdog_pid=$!
if ! wait "$daemon_pid"; then
    echo "ci: archlined did not drain cleanly on SIGTERM" >&2
    cat "$tmpdir/daemon.log" >&2
    exit 1
fi
kill "$watchdog_pid" 2>/dev/null || true

echo "ci: archlined chaos smoke test"
# Boot a second daemon with the chaos middleware explicitly enabled and
# assert graceful degradation: no 5xx without the JSON error envelope,
# Retry-After on shed/breaker responses, liveness intact throughout.
"$tmpdir/archlined" -addr 127.0.0.1:0 -chaos paper -chaos-seed 42 -max-inflight 64 \
    >"$tmpdir/chaos.log" 2>&1 &
chaos_pid=$!

chaos_base=""
for _ in $(seq 1 50); do
    chaos_base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/chaos.log")
    [ -n "$chaos_base" ] && break
    sleep 0.1
done
if [ -z "$chaos_base" ]; then
    echo "ci: chaos archlined never announced its address" >&2
    cat "$tmpdir/chaos.log" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q "CHAOS MODE enabled" "$tmpdir/chaos.log"; then
    echo "ci: chaos archlined did not announce chaos mode" >&2
    cat "$tmpdir/chaos.log" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi

go run ./scripts/smoke -base "$chaos_base" -chaos

kill -TERM "$chaos_pid"
( sleep 5; kill -9 "$chaos_pid" 2>/dev/null ) &
chaos_watchdog_pid=$!
if ! wait "$chaos_pid"; then
    echo "ci: chaos archlined did not drain cleanly on SIGTERM" >&2
    cat "$tmpdir/chaos.log" >&2
    exit 1
fi
kill "$chaos_watchdog_pid" 2>/dev/null || true

echo "ci: archlined crash-recovery drill"
# Commit one registry upload, SIGKILL the daemon with no warning, plant
# a corrupt blob in the store, restart over the same data directory, and
# require the acknowledged upload back (same ETag) with the corruption
# quarantined — the registry's durability contract, end to end.
crash_data="$tmpdir/crashdata"
"$tmpdir/archlined" -addr 127.0.0.1:0 -data-dir "$crash_data" \
    >"$tmpdir/crash.log" 2>&1 &
crash_pid=$!

crash_base=""
for _ in $(seq 1 50); do
    crash_base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/crash.log")
    [ -n "$crash_base" ] && break
    sleep 0.1
done
if [ -z "$crash_base" ]; then
    echo "ci: crash-drill archlined never announced its address" >&2
    cat "$tmpdir/crash.log" >&2
    kill "$crash_pid" 2>/dev/null || true
    exit 1
fi

commit_line=$(go run ./scripts/smoke -base "$crash_base" -crash-commit)
etag=$(printf '%s\n' "$commit_line" | sed -n 's/^smoke: committed //p')
if [ -z "$etag" ]; then
    echo "ci: crash-commit probe printed no sentinel: $commit_line" >&2
    kill -9 "$crash_pid" 2>/dev/null || true
    exit 1
fi

# No SIGTERM, no drain: the acknowledged write must already be on disk.
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true

# Bit-rot: a blob whose content no longer matches its content address.
printf 'not a registry envelope' \
    >"$crash_data/blobs/$(printf 'c%.0s' $(seq 1 64)).json"

"$tmpdir/archlined" -addr 127.0.0.1:0 -data-dir "$crash_data" \
    >"$tmpdir/recover.log" 2>&1 &
recover_pid=$!

recover_base=""
for _ in $(seq 1 50); do
    recover_base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/recover.log")
    [ -n "$recover_base" ] && break
    sleep 0.1
done
if [ -z "$recover_base" ]; then
    echo "ci: recovered archlined never announced its address" >&2
    cat "$tmpdir/recover.log" >&2
    kill "$recover_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q 'recovered 1 uploaded platform' "$tmpdir/recover.log"; then
    echo "ci: restart did not report the recovered upload" >&2
    cat "$tmpdir/recover.log" >&2
    kill "$recover_pid" 2>/dev/null || true
    exit 1
fi

go run ./scripts/smoke -base "$recover_base" -verify-recover \
    -etag "$etag" -want-quarantined 1

kill -TERM "$recover_pid"
( sleep 5; kill -9 "$recover_pid" 2>/dev/null ) &
recover_watchdog_pid=$!
if ! wait "$recover_pid"; then
    echo "ci: recovered archlined did not drain cleanly on SIGTERM" >&2
    cat "$tmpdir/recover.log" >&2
    exit 1
fi
kill "$recover_watchdog_pid" 2>/dev/null || true

echo "ci: OK"
