#!/bin/sh
# ci.sh — continuous-integration entry point.
#
# Same gate as scripts/check.sh but with test caching disabled
# (GOFLAGS=-count=1) so every run re-executes the suite, and with a
# per-analyzer summary of archlint findings (total and suppressed) on
# stderr. Exits nonzero if the build, vet, tests, or any unsuppressed
# archlint finding fails.
set -eu

cd "$(dirname "$0")/.."

export GOFLAGS=-count=1

echo "ci: go build"
go build ./...

echo "ci: go vet"
go vet ./...

echo "ci: go test -race"
go test -race ./...

echo "ci: archlint"
go run ./cmd/archlint -summary ./...

echo "ci: OK"
