#!/bin/sh
# bench.sh — run the engine benchmark suite and snapshot it as JSON.
#
# Runs the perf-trajectory benchmarks (the parallel suite driver, the
# batch-vs-sequential HTTP comparison, the streaming sweep, and the
# microbench hot-path benches), then converts the text output to a
# stable JSON document via scripts/benchjson.
#
# Usage:
#   scripts/bench.sh [out.json]        # default out: BENCH_engine.json
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 2x; CI smoke uses 1x)
#   BENCHCOUNT  go test -count value (default 1)
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_engine.json}
benchtime=${BENCHTIME:-2x}
count=${BENCHCOUNT:-1}
pattern='^(BenchmarkSuiteRun|BenchmarkRunWorkers|BenchmarkResultFilters|BenchmarkBatchVsSequential|BenchmarkSweepStream)$'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "bench: go test -bench (benchtime=$benchtime, count=$count)"
go test -run '^$' -bench "$pattern" -benchmem \
    -benchtime "$benchtime" -count "$count" \
    . ./internal/microbench/ ./internal/server/ | tee "$tmp"

go run ./scripts/benchjson <"$tmp" >"$out"
echo "bench: wrote $out"
