#!/bin/sh
# bench.sh — run the engine benchmark suite and snapshot it as JSON.
#
# Runs the perf-trajectory benchmarks (the parallel suite driver, the
# batch-vs-sequential HTTP comparison, the streaming sweep, and the
# microbench hot-path benches), then converts the text output to a
# stable JSON document via scripts/benchjson.
#
# Usage:
#   scripts/bench.sh [out.json]        # default out: BENCH_engine.json
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 2x; CI smoke uses 1x)
#   BENCHCOUNT  go test -count value (default 1)
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_engine.json}
benchtime=${BENCHTIME:-2x}
count=${BENCHCOUNT:-1}
pattern='^(BenchmarkSuiteRun|BenchmarkRunWorkers|BenchmarkResultFilters|BenchmarkBatchVsSequential|BenchmarkSweepStream|BenchmarkMapDispatch)$'

tmp=$(mktemp)
trap 'rm -f "$tmp" "$tmp.prev"' EXIT

# Keep the outgoing snapshot so benchjson can embed allocs/op deltas:
# the new file then records its own trajectory against the old one.
prevflag=""
if [ -f "$out" ]; then
    cp "$out" "$tmp.prev"
    prevflag="-prev $tmp.prev"
fi

echo "bench: go test -bench (benchtime=$benchtime, count=$count)"
go test -run '^$' -bench "$pattern" -benchmem \
    -benchtime "$benchtime" -count "$count" \
    . ./internal/microbench/ ./internal/server/ ./internal/pool/ | tee "$tmp"

# $prevflag expands to zero or two words by design.
# shellcheck disable=SC2086
go run ./scripts/benchjson $prevflag <"$tmp" >"$out"
echo "bench: wrote $out"
