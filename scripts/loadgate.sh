#!/bin/sh
# loadgate.sh — the latency-budget gate (make loadtest).
#
# Boots archlined on an ephemeral port, drives a deterministic
# archloadgen pass at it, and enforces the committed budget
# (scripts/load_budget.json): p99 latency, minimum throughput, zero
# unexpected 5xx/transport errors, and the aggregation pipeline's
# health contract (-check-agg: per-platform counters materialized, the
# interval flusher alive and recent). A latency regression fails this
# script the same way a broken test fails the suite.
#
# Knobs (environment):
#   LOADTEST_DURATION  load length, default 5s
#   LOADTEST_BUDGET    budget file, default scripts/load_budget.json
#   LOADTEST_SEED      request-stream seed, default 42
set -eu

cd "$(dirname "$0")/.."

duration="${LOADTEST_DURATION:-5s}"
budget="${LOADTEST_BUDGET:-scripts/load_budget.json}"
seed="${LOADTEST_SEED:-42}"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "loadgate: building archlined and archloadgen"
go build -o "$tmpdir/archlined" ./cmd/archlined
go build -o "$tmpdir/archloadgen" ./cmd/archloadgen

# A data directory so the upload op would have durable storage if the
# mix enables it; defaults keep uploads and fit jobs off.
"$tmpdir/archlined" -addr 127.0.0.1:0 -data-dir "$tmpdir/data" \
    >"$tmpdir/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^archlined listening on \(.*\)$/\1/p' "$tmpdir/daemon.log")
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "loadgate: archlined never announced its address" >&2
    cat "$tmpdir/daemon.log" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi

echo "loadgate: driving load at $base for $duration (seed $seed, budget $budget)"
gate_status=0
"$tmpdir/archloadgen" -base "$base" -duration "$duration" -seed "$seed" \
    -budget "$budget" -check-agg || gate_status=$?

# Drain the daemon cleanly regardless of the gate verdict; a daemon
# that cannot drain after load is its own failure.
kill -TERM "$daemon_pid"
( sleep 5; kill -9 "$daemon_pid" 2>/dev/null ) &
watchdog_pid=$!
if ! wait "$daemon_pid"; then
    echo "loadgate: archlined did not drain cleanly on SIGTERM after load" >&2
    cat "$tmpdir/daemon.log" >&2
    exit 1
fi
kill "$watchdog_pid" 2>/dev/null || true

if [ "$gate_status" -ne 0 ]; then
    echo "loadgate: FAILED (see budget violations above)" >&2
    exit "$gate_status"
fi
echo "loadgate: OK"
