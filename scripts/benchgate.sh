#!/bin/sh
# benchgate.sh — enforce the committed bench budget (allocs/op ceilings
# and the parallel-speedup floor in scripts/bench_budget.json).
#
# Usage:
#   scripts/benchgate.sh [bench.json]
#
# With an argument, gates that existing benchjson snapshot (this is how
# ci.sh reuses its bench-smoke output). Without one, runs a fresh quick
# bench pass (BENCHTIME=1x unless overridden) into a temp file and
# gates that, leaving the committed BENCH_engine.json untouched.
set -eu

cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
    bench=$1
else
    tmpd=$(mktemp -d)
    trap 'rm -rf "$tmpd"' EXIT
    BENCHTIME=${BENCHTIME:-1x} ./scripts/bench.sh "$tmpd/bench.json" >/dev/null
    bench=$tmpd/bench.json
fi

go run ./scripts/benchgate -bench "$bench" -budget scripts/bench_budget.json
