// benchgate enforces the committed performance budget against a
// benchjson snapshot: per-benchmark allocs/op ceilings, plus a
// parallel-speedup floor that arms itself only on hosts with enough
// cores to make the comparison meaningful. It is the teeth behind the
// bench trajectory — scripts/bench.sh records where the numbers are,
// benchgate fails the build when they regress past the budget.
//
// Usage:
//
//	go run ./scripts/benchgate -bench BENCH_engine.json -budget scripts/bench_budget.json
//
// Budget schema (scripts/bench_budget.json):
//
//   - allocs_ceilings: map of benchmark name to maximum allocs/op. A
//     key matches a record's name exactly, or as a prefix when the
//     name continues with '(' — so "BenchmarkSuiteRun/workers=max"
//     covers the NumCPU-stamped "BenchmarkSuiteRun/workers=max(8)".
//     Every ceiling must find at least one record: a gate that cannot
//     see its benchmark must fail, not silently pass.
//   - speedup_floor: requires ns/op(base) / ns/op(wide) >= min_ratio,
//     but only when the snapshot's host ran min_num_cpu or more CPUs;
//     below that the floor stays dormant (a 1-CPU box cannot speed up).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchRecord mirrors the benchjson record fields the gate reads.
type benchRecord struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchDoc mirrors the benchjson document shape.
type benchDoc struct {
	Host struct {
		NumCPU int `json:"num_cpu"`
	} `json:"host"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// speedupFloor is the parallel-speedup contract.
type speedupFloor struct {
	MinNumCPU int     `json:"min_num_cpu"`
	Base      string  `json:"base"`
	Wide      string  `json:"wide"`
	MinRatio  float64 `json:"min_ratio"`
}

// budget is the committed regression budget.
type budget struct {
	AllocsCeilings map[string]float64 `json:"allocs_ceilings"`
	SpeedupFloor   *speedupFloor      `json:"speedup_floor"`
}

// nameMatches reports whether a budget key addresses a benchmark name:
// exact, or a prefix whose continuation is a parenthesized qualifier
// (the host-dependent "(NumCPU)" stamp).
func nameMatches(key, name string) bool {
	if name == key {
		return true
	}
	return strings.HasPrefix(name, key) && name[len(key)] == '('
}

// findAll returns the records a budget key addresses.
func findAll(doc *benchDoc, key string) []benchRecord {
	var out []benchRecord
	for _, rec := range doc.Benchmarks {
		if nameMatches(key, rec.Name) {
			out = append(out, rec)
		}
	}
	return out
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}

func run(benchPath, budgetPath string) error {
	var doc benchDoc
	if err := loadJSON(benchPath, &doc); err != nil {
		return err
	}
	var bud budget
	if err := loadJSON(budgetPath, &bud); err != nil {
		return err
	}

	failures := 0
	// Ceilings sort by key for stable output; a map range would shuffle
	// the report between runs.
	keys := make([]string, 0, len(bud.AllocsCeilings))
	for k := range bud.AllocsCeilings {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, key := range keys {
		ceiling := bud.AllocsCeilings[key]
		recs := findAll(&doc, key)
		if len(recs) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: no such benchmark in %s\n", key, benchPath)
			failures++
			continue
		}
		for _, rec := range recs {
			got, ok := rec.Metrics["allocs/op"]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: no allocs/op metric (run with -benchmem)\n", rec.Name)
				failures++
				continue
			}
			if got > ceiling {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op exceeds ceiling %.0f\n",
					rec.Name, got, ceiling)
				failures++
				continue
			}
			fmt.Printf("benchgate: ok %s: %.0f allocs/op <= %.0f\n", rec.Name, got, ceiling)
		}
	}

	if sf := bud.SpeedupFloor; sf != nil {
		if doc.Host.NumCPU < sf.MinNumCPU {
			fmt.Printf("benchgate: speedup floor dormant (host has %d CPUs, floor arms at %d)\n",
				doc.Host.NumCPU, sf.MinNumCPU)
		} else {
			base, wide := findAll(&doc, sf.Base), findAll(&doc, sf.Wide)
			switch {
			case len(base) == 0 || len(wide) == 0:
				fmt.Fprintf(os.Stderr, "benchgate: FAIL speedup floor: %q or %q missing from %s\n",
					sf.Base, sf.Wide, benchPath)
				failures++
			default:
				bNs, wNs := base[0].Metrics["ns/op"], wide[0].Metrics["ns/op"]
				if wNs <= 0 {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL speedup floor: %s reports ns/op %g\n",
						sf.Wide, wNs)
					failures++
				} else if ratio := bNs / wNs; ratio < sf.MinRatio {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL speedup floor: %s/%s = %.2fx, floor %.2fx\n",
						sf.Base, sf.Wide, ratio, sf.MinRatio)
					failures++
				} else {
					fmt.Printf("benchgate: ok speedup %s vs %s: %.2fx >= %.2fx\n",
						sf.Base, sf.Wide, ratio, sf.MinRatio)
				}
			}
		}
	}

	if failures > 0 {
		return fmt.Errorf("%d budget violation(s)", failures)
	}
	return nil
}

func main() {
	bench := flag.String("bench", "BENCH_engine.json", "benchjson snapshot to gate")
	budgetPath := flag.String("budget", "scripts/bench_budget.json", "committed budget file")
	flag.Parse()
	if err := run(*bench, *budgetPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
