#!/bin/sh
# check.sh — the full pre-merge gate, equivalent to `make check`.
# Builds everything, vets, runs the race-enabled test suite, then runs
# the in-repo static-analysis suite (cmd/archlint) over every package —
# all eight analyzers, dimcheck included, plus stale-suppression
# detection; any unsuppressed finding fails the gate.
set -eu

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/archlint ./...
echo "check: OK"
