package archline

// One benchmark per table and figure of the paper, plus the ablation
// benches DESIGN.md calls out. Each table/figure bench runs the same
// driver the archline CLI uses and reports the experiment's headline
// numbers as custom metrics, so `go test -bench` regenerates the rows
// the paper reports.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"archline/internal/cache"
	"archline/internal/experiments"
	"archline/internal/fit"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/powermon"
	"archline/internal/sim"
	"archline/internal/stats"
	"archline/internal/units"
)

// benchOpts keeps the per-iteration cost sane while exercising the full
// pipeline.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, SweepPoints: 15}
}

// BenchmarkTable1 regenerates Table I: the full microbenchmark suite and
// parameter fit on all twelve platforms.
func BenchmarkTable1(b *testing.B) {
	var last *experiments.TableIResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MaxRelErr("pi_1"), "worst-pi1-relerr")
	b.ReportMetric(last.MaxRelErr("eps_mem"), "worst-epsmem-relerr")
}

// BenchmarkSuiteRun measures the Table I driver — the 12-platform
// measure+fit pipeline behind `archline table1` — at several widths of
// the two-level worker pool. workers=1 is the sequential baseline the
// speedup claims compare against; workers=0 lets pool.Clamp pick
// NumCPU. Outputs are bit-identical at every width (asserted by
// TestRunDeterministicAcrossWorkers), so the widths differ only in
// wall-clock.
func BenchmarkSuiteRun(b *testing.B) {
	widths := []int{1, 2, 4, 0}
	for _, workers := range widths {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("workers=max(%d)", runtime.NumCPU())
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.TableI(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1 regenerates the fig. 1 building-block comparison.
func BenchmarkFig1(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Comparison.AggCount), "arndale-gpus") // paper: 47
	b.ReportMetric(float64(last.Comparison.EnergyCrossover), "flopJ-crossover-I")
	b.ReportMetric(last.Comparison.MaxAggSpeedup, "agg-max-speedup") // paper: 1.6
}

// BenchmarkFig4 regenerates the capped-vs-uncapped error study with K-S
// significance testing.
func BenchmarkFig4(b *testing.B) {
	opts := benchOpts()
	opts.Replicates = 4
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SignificantCount()), "ks-significant") // paper: 7
}

// BenchmarkFig5 regenerates the twelve power-vs-intensity panels.
func BenchmarkFig5(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	worst := 0.0
	for _, p := range last.Panels {
		if p.MaxAbsErr > worst {
			worst = p.MaxAbsErr
		}
	}
	b.ReportMetric(worst, "worst-model-err") // paper: < 0.15
}

// BenchmarkFig6 regenerates the power-under-caps figure.
func BenchmarkFig6(b *testing.B) {
	benchThrottle(b, experiments.ThrottlePower)
}

// BenchmarkFig7a regenerates the performance-under-caps figure.
func BenchmarkFig7a(b *testing.B) {
	benchThrottle(b, experiments.ThrottlePerf)
}

// BenchmarkFig7b regenerates the energy-efficiency-under-caps figure.
func BenchmarkFig7b(b *testing.B) {
	benchThrottle(b, experiments.ThrottleEff)
}

func benchThrottle(b *testing.B, q experiments.ThrottleQuantity) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Throttle(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerBounding regenerates the section V-D bounding analysis.
func BenchmarkPowerBounding(b *testing.B) {
	var last *experiments.ScenariosResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scenarios()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Bounding.SmallCount), "arndale-gpus") // paper: 23
	b.ReportMetric(last.Bounding.BigPerfRatio, "titan-perf-ratio")    // paper: 0.31
	b.ReportMetric(last.Bounding.SmallVsBig, "assembly-speedup")      // paper: ~2.8
}

// --- Ablation benches (DESIGN.md section 4) ---

// BenchmarkModelCappedVsUncapped measures the cost and the accuracy gap
// of the paper's headline model change on a heavily-capped platform.
func BenchmarkModelCappedVsUncapped(b *testing.B) {
	p := machine.MustByID(machine.ArndaleGPU).Single
	grid := model.LogSpace(0.125, 512, 256)
	b.Run("capped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range grid {
				_ = p.AvgPowerAt(x)
			}
		}
	})
	b.Run("uncapped", func(b *testing.B) {
		w := units.Flops(1e9)
		for i := 0; i < b.N; i++ {
			for _, x := range grid {
				q := x.Bytes(w)
				_ = p.EnergyUncapped(w, q).Over(p.TimeUncapped(w, q))
			}
		}
	})
}

// BenchmarkHierarchyAblation compares per-level energy accounting against
// a flat eps_mem model on cache-resident traffic.
func BenchmarkHierarchyAblation(b *testing.B) {
	plat := machine.MustByID(machine.GTXTitan)
	h := plat.Hierarchy()
	w := units.GFlops(10)
	traffic := []model.LevelTraffic{
		{Level: model.LevelL1, Bytes: units.GB(16)},
		{Level: model.LevelL2, Bytes: units.GB(4)},
		{Level: model.LevelDRAM, Bytes: units.GB(1)},
	}
	b.Run("per-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Energy(w, traffic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		q := units.GB(21)
		for i := 0; i < b.N; i++ {
			_ = plat.Single.Energy(w, q)
		}
	})
}

// BenchmarkFitStrategies compares the production staged fit (sustained
// taus + 4-parameter regression) against the naive joint 6-parameter
// Nelder-Mead fit it replaced.
func BenchmarkFitStrategies(b *testing.B) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := microbench.DefaultConfig()
	cfg.SweepPoints = 15
	suite, err := microbench.Run(plat, cfg, sim.Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("staged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fit.Platform(suite, fit.Options{Seed: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("staged-few-restarts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fit.Platform(suite, fit.Options{Seed: 3, Restarts: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheAblation compares the analytic working-set classifier
// against the full set-associative cache simulation.
func BenchmarkCacheAblation(b *testing.B) {
	plat := machine.MustByID(machine.DesktopCPU)
	k := sim.Kernel{
		Name: "l2", Precision: sim.Single, Pattern: sim.StreamPattern,
		FlopsPerWord: 4, WorkingSet: units.KiB(128), Passes: 4,
	}
	b.Run("analytic", func(b *testing.B) {
		s := sim.New(plat, sim.Options{Seed: 1, Noiseless: true})
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-sim", func(b *testing.B) {
		s := sim.New(plat, sim.Options{Seed: 1, Noiseless: true, UseCacheSim: true})
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSamplingRate measures energy-integration error versus the
// meter's sampling rate, ablating PowerMon 2's 1024 Hz choice.
func BenchmarkSamplingRate(b *testing.B) {
	// Bursty load: 5 ms spikes of +300 W every 37 ms on a 100 W floor
	// (duty cycle 13.5%, true average 140.5 W). Slow meters alias the
	// bursts; PowerMon's 1024 Hz resolves them.
	sig := func(t units.Time) units.Power {
		phase := math.Mod(float64(t), 0.037) / 0.037
		if phase < 0.135 {
			return 400
		}
		return 100
	}
	const trueAvg = 100 + 300*0.135
	for _, rate := range []float64{64, 256, 1024, 4096} {
		b.Run(units.FormatSI(rate, "Hz", 4), func(b *testing.B) {
			m := powermon.MobileBoardMeter()
			m.SampleRate = rate
			m.MaxAggregate = 0
			m.Channels[0].CalibGain = 1
			m.Channels[0].NoiseSD = 0
			var tr *powermon.Trace
			for i := 0; i < b.N; i++ {
				var err error
				tr, err = m.Record(sig, 0.5, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			err := math.Abs(float64(tr.AvgPower()) - trueAvg)
			b.ReportMetric(err, "watts-error")
		})
	}
}

// --- Hot-path micro-benchmarks ---

// BenchmarkModelEval measures a single eq. (7) evaluation.
func BenchmarkModelEval(b *testing.B) {
	p := machine.MustByID(machine.GTXTitan).Single
	for i := 0; i < b.N; i++ {
		_ = p.AvgPowerAt(units.Intensity(4))
	}
}

// BenchmarkSimMeasure measures one simulated kernel measurement
// end-to-end (physics + power-trace sampling).
func BenchmarkSimMeasure(b *testing.B) {
	s := sim.New(machine.MustByID(machine.GTXTitan), sim.Options{Seed: 1})
	k := sim.Kernel{
		Name: "bench", Precision: sim.Single, Pattern: sim.StreamPattern,
		FlopsPerWord: 32, WorkingSet: units.MiB(64), Passes: 4,
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the cache simulator's per-access cost.
func BenchmarkCacheAccess(b *testing.B) {
	l, err := cache.NewLevel(cache.Config{
		Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: cache.LRU,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(uint64(i*64) % (1 << 20))
	}
}

// BenchmarkKSTest measures the two-sample K-S test on fig. 4-sized
// samples.
func BenchmarkKSTest(b *testing.B) {
	rng := stats.NewStream(1, "bench-ks")
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KolmogorovSmirnov(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNelderMead measures one 4-parameter model fit objective
// minimization.
func BenchmarkNelderMead(b *testing.B) {
	f := func(x []float64) float64 {
		s := 0.0
		for j, v := range x {
			d := v - float64(j)
			s += d * d
		}
		return s
	}
	x0 := []float64{5, 5, 5, 5}
	for i := 0; i < b.N; i++ {
		if _, err := fit.NelderMead(f, x0, fit.NMOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowermonRecord measures a 0.25 s three-rail recording.
func BenchmarkPowermonRecord(b *testing.B) {
	m := powermon.PCIeGPUMeter()
	rng := stats.NewStream(1, "bench-rec")
	for i := 0; i < b.N; i++ {
		if _, err := m.Record(powermon.Constant(250), 0.25, rng); err != nil {
			b.Fatal(err)
		}
	}
}
