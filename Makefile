GO ?= go

.PHONY: build test race vet lint check ci fmt serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint runs the in-repo static-analysis suite (cmd/archlint):
## unit-safety, float comparisons, map-order determinism, dropped
## errors, and goroutine hygiene. Exits nonzero on any unsuppressed
## finding.
lint:
	$(GO) run ./cmd/archlint ./...

## check is the full pre-merge gate.
check: build vet race lint

## ci is check with caching disabled and a per-analyzer lint summary.
ci:
	./scripts/ci.sh

fmt:
	gofmt -w .

## serve runs archlined, the HTTP/JSON query daemon, on :8080.
serve:
	$(GO) run ./cmd/archlined
