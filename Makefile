GO ?= go

.PHONY: build test race vet lint check ci chaos fmt serve profile bench benchgate loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint runs the in-repo static-analysis suite (cmd/archlint):
## unit-safety, dimensional consistency of raw-float arithmetic
## (dimcheck), float comparisons, map-order determinism, dropped
## errors, goroutine hygiene, simulator seeding, span-lifecycle
## discipline, and stale-suppression detection. Exits nonzero on any
## unsuppressed finding.
lint:
	$(GO) run ./cmd/archlint ./...

## check is the full pre-merge gate.
check: build vet race lint

## ci is check with caching disabled and a per-analyzer lint summary.
ci:
	./scripts/ci.sh

## chaos exercises the fault-injection stack: the fault, sanitization,
## robust-measurement, robust-fit, and server-resilience suites (race
## detector on, caching off), then one robust measure+fit run under the
## paper fault profile.
chaos:
	$(GO) test -race -count=1 ./internal/faults/ ./internal/powermon/ ./internal/sim/ \
		./internal/microbench/ ./internal/fit/ ./internal/server/
	$(GO) run ./cmd/archline -platform gtx-titan -faults paper -seed 42 measure

## bench runs the perf-trajectory benchmarks (parallel suite driver,
## batch vs sequential HTTP, streaming sweep, microbench hot paths) and
## snapshots them to BENCH_engine.json via scripts/benchjson.
bench:
	./scripts/bench.sh

## benchgate runs a fresh quick bench pass and enforces the committed
## perf budget: allocs/op ceilings plus a parallel-speedup floor that
## arms only on hosts with >= 4 CPUs (scripts/bench_budget.json).
benchgate:
	./scripts/benchgate.sh

## loadtest boots archlined on an ephemeral port, drives a deterministic
## archloadgen pass at it, and enforces the committed latency budget
## (scripts/load_budget.json) plus the metric-aggregation health
## contract. Knobs: LOADTEST_DURATION, LOADTEST_BUDGET, LOADTEST_SEED.
loadtest:
	./scripts/loadgate.sh

fmt:
	gofmt -w .

## serve runs archlined, the HTTP/JSON query daemon, on :8080.
serve:
	$(GO) run ./cmd/archlined

## profile boots archlined with -pprof, drives query load at it, and
## captures a CPU profile to cpu.pprof (override with OUT=/path).
profile:
	./scripts/profile.sh
