module archline

go 1.22
