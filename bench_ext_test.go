package archline

// Benchmarks for the extension subsystems: DVFS, the cluster/network
// model, bootstrap confidence intervals, trace-phase detection, and the
// cache prefetcher.

import (
	"testing"

	"archline/internal/cache"
	"archline/internal/cluster"
	"archline/internal/experiments"
	"archline/internal/fit"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/scenario"
	"archline/internal/sim"
	"archline/internal/trace"
	"archline/internal/units"
)

// BenchmarkDVFSAnalysis regenerates the DVFS what-if over all platforms.
func BenchmarkDVFSAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DVFSAnalysis(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDVFSOptimalFrequency measures one golden-section search.
func BenchmarkDVFSOptimalFrequency(b *testing.B) {
	d := model.DVFS{
		Base: machine.MustByID(machine.GTXTitan).Single,
		F0:   837e6, FMin: 324e6, FMax: 993e6,
		V0: 1.162, VMin: 0.875, FVmin: 540e6,
		Pi1FreqShare: 0.35,
	}
	for i := 0; i < b.N; i++ {
		if _, err := d.EnergyOptimalFrequency(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkCaveat regenerates the network-adjusted fig. 1.
func BenchmarkNetworkCaveat(b *testing.B) {
	var last *experiments.NetworkResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Network()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Cases[1].EffAdvantage, "gbe-flopJ-advantage")
	b.ReportMetric(last.Cases[2].EffAdvantage, "ib-flopJ-advantage")
}

// BenchmarkClusterStep measures one bulk-synchronous superstep.
func BenchmarkClusterStep(b *testing.B) {
	cl := &cluster.Cluster{
		Node:    machine.MustByID(machine.ArndaleGPU).Single,
		Nodes:   47,
		Net:     cluster.EthernetLowPower(),
		Overlap: true,
	}
	step := cluster.Step{
		W: units.TFlops(1), Q: units.GB(100),
		Msg: units.MiB(2), Pattern: cluster.Halo,
	}
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(step); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrap measures a 20-replicate bootstrap of the Titan fit.
func BenchmarkBootstrap(b *testing.B) {
	cfg := microbench.DefaultConfig()
	cfg.SweepPoints = 12
	suite, err := microbench.Run(machine.MustByID(machine.GTXTitan), cfg, sim.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.Bootstrap(suite, 20, 0.95, fit.Options{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseDetection measures change-point segmentation of a
// three-phase PowerMon trace.
func BenchmarkPhaseDetection(b *testing.B) {
	s := sim.New(machine.MustByID(machine.GTXTitan), sim.Options{Seed: 4})
	kernels := []sim.Kernel{
		{Name: "mem", Precision: sim.Single, FlopsPerWord: 0.5, WorkingSet: units.MiB(64), Passes: 900},
		{Name: "flops", Precision: sim.Single, FlopsPerWord: 4096, WorkingSet: units.MiB(64), Passes: 15},
		{Name: "chase", Precision: sim.Single, Pattern: sim.ChasePattern, WorkingSet: units.MiB(256), Passes: 120},
	}
	_, tr, err := s.MeasureSequence(kernels)
	if err != nil {
		b.Fatal(err)
	}
	pts, err := trace.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var phases []trace.Phase
	for i := 0; i < b.N; i++ {
		phases, err = trace.DetectPhases(trace.MovingAverage(pts, 9), 16, 0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(phases)), "phases")
}

// BenchmarkPrefetcher measures the stride prefetcher on a streaming walk
// and reports its accuracy.
func BenchmarkPrefetcher(b *testing.B) {
	l, err := cache.NewLevel(cache.Config{
		Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: cache.LRU,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := cache.NewPrefetcher(l, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(i) * 64)
	}
	b.ReportMetric(p.Accuracy(), "accuracy")
}

// BenchmarkWritebackStream measures a write-allocate stream with dirty
// evictions through a two-level hierarchy.
func BenchmarkWritebackStream(b *testing.B) {
	h, err := cache.NewHierarchy(
		cache.Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: cache.LRU},
		cache.Config{Name: "L2", Size: units.KiB(256), LineSize: 64, Assoc: 8, Policy: cache.LRU},
	)
	if err != nil {
		b.Fatal(err)
	}
	addrs, err := cache.StreamAddrs(units.MiB(1), 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	ops := cache.WriteEvery(addrs, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RunOps(ops, 64)
	}
}

// BenchmarkHeteroSplit measures the divisible-work partitioners.
func BenchmarkHeteroSplit(b *testing.B) {
	pool := []scenario.HeteroMachine{
		{Name: "titan", Params: machine.MustByID(machine.GTXTitan).Single, Count: 1},
		{Name: "mali", Params: machine.MustByID(machine.ArndaleGPU).Single, Count: 16},
		{Name: "phi", Params: machine.MustByID(machine.XeonPhi).Single, Count: 2},
	}
	b.Run("time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scenario.SplitForTime(pool, units.TFlops(1), 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("energy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scenario.SplitForEnergy(pool, units.TFlops(1), 0.5, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRooflineKnee measures the knee bisection.
func BenchmarkRooflineKnee(b *testing.B) {
	p := machine.MustByID(machine.GTXTitan).Single
	for i := 0; i < b.N; i++ {
		if _, err := p.RequiredIntensityForEfficiency(0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingSweep measures a 7-point strong-scaling sweep.
func BenchmarkScalingSweep(b *testing.B) {
	node := machine.MustByID(machine.ArndaleGPU).Single
	step := cluster.Step{W: units.TFlops(0.1), Q: units.GB(40), Msg: units.MiB(32), Pattern: cluster.Halo}
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	for i := 0; i < b.N; i++ {
		if _, err := cluster.ScalingSweep(node, cluster.EthernetLowPower(), sizes, step,
			cluster.StrongScaling, true); err != nil {
			b.Fatal(err)
		}
	}
}
